//! The numbers the paper reports, as constants.
//!
//! Every experiment binary prints these beside the measured values so
//! EXPERIMENTS.md can record paper-vs-measured for each table/figure.

/// Fig 1 average execution-time shares on Non-acc (§III Q1), in the
/// order: TCP, (De)Encr, RPC, (De)Ser, (De)Cmp, LdB, AppLogic.
pub const FIG1_SHARES: [(&str, f64); 7] = [
    ("TCP", 0.256),
    ("(De)Encr", 0.146),
    ("RPC", 0.032),
    ("(De)Ser", 0.224),
    ("(De)Cmp", 0.095),
    ("LdB", 0.039),
    ("AppLogic", 0.207),
];

/// Fig 3: orchestration overhead fraction at 15 kRPS.
pub const FIG3_CPU_CENTRIC_AT_15K: f64 = 0.25;
/// Fig 3: HW-Manager overhead at 15 kRPS.
pub const FIG3_HW_MANAGER_AT_15K: f64 = 0.15;

/// Fig 11: average P99 reduction of AccelFlow vs (Non-acc,
/// CPU-Centric, RELIEF, Cohort).
pub const FIG11_P99_REDUCTION: [(&str, f64); 4] = [
    ("Non-acc", 0.907),
    ("CPU-Centric", 0.812),
    ("RELIEF", 0.688),
    ("Cohort", 0.701),
];

/// Fig 11: average mean-latency reduction of AccelFlow vs the same
/// baselines.
pub const FIG11_MEAN_REDUCTION: [(&str, f64); 4] = [
    ("Non-acc", 0.772),
    ("CPU-Centric", 0.539),
    ("RELIEF", 0.407),
    ("Cohort", 0.379),
];

/// Fig 12: P99 reduction vs RELIEF at 5/10/15 kRPS.
pub const FIG12_VS_RELIEF: [(f64, f64); 3] =
    [(5_000.0, 0.551), (10_000.0, 0.609), (15_000.0, 0.683)];

/// Fig 13: cumulative average P99 reduction after each technique
/// (PerAccTypeQ, Direct, CntrFlow, AccelFlow) relative to RELIEF.
pub const FIG13_CUMULATIVE_REDUCTION: [(&str, f64); 4] = [
    ("PerAccTypeQ", 0.068),
    ("Direct", 0.327),
    ("CntrFlow", 0.551),
    ("AccelFlow", 0.687),
];

/// Fig 14: throughput of AccelFlow vs Non-acc.
pub const FIG14_VS_NONACC: f64 = 8.3;
/// Fig 14: throughput of AccelFlow vs RELIEF.
pub const FIG14_VS_RELIEF: f64 = 2.2;
/// Fig 14: AccelFlow is within this fraction of Ideal.
pub const FIG14_WITHIN_IDEAL: f64 = 0.08;
/// §VII-A3: extra throughput from deadline scheduling.
pub const FIG14_DEADLINE_EXTRA: f64 = 1.6;

/// Fig 15: throughput of AccelFlow vs RELIEF on the coarse-grain
/// suite.
pub const FIG15_VS_RELIEF: f64 = 1.8;

/// Fig 16: average serverless P99 reduction vs RELIEF.
pub const FIG16_VS_RELIEF: f64 = 0.37;

/// Fig 17: orchestration share of AccelFlow execution time (unloaded).
pub const FIG17_ORCH_SHARE: f64 = 0.022;
/// Fig 17 text: RELIEF's orchestration share for comparison.
pub const FIG17_RELIEF_ORCH_SHARE: f64 = 0.10;

/// §VII-B2: average glue instructions per output-dispatcher operation.
pub const GLUE_AVG_INSTRUCTIONS: f64 = 18.0;

/// §VII-B4: accelerator utilization at peak throughput.
pub const UTILIZATION_AT_PEAK: [(&str, f64); 6] = [
    ("TCP", 0.92),
    ("(De)Encr", 0.82),
    ("RPC", 0.68),
    ("(De)Ser", 0.73),
    ("(De)Cmp", 0.38),
    ("LdB", 0.71),
];

/// §VII-B5: energy reduction vs Non-acc.
pub const ENERGY_REDUCTION_VS_NONACC: f64 = 0.74;
/// §VII-B5: perf/W vs Non-acc.
pub const PERF_PER_WATT_VS_NONACC: f64 = 7.2;
/// §VII-B5: perf/W vs RELIEF.
pub const PERF_PER_WATT_VS_RELIEF: f64 = 2.1;

/// §VII-B6: overflow-area fallbacks as a share of invocations (avg).
pub const OVERFLOW_SHARE_AVG: f64 = 0.014;
/// §VII-B6: overflow share at peak load.
pub const OVERFLOW_SHARE_PEAK: f64 = 0.059;

/// Fig 18: average P99 increase from 2 to 6 chiplets.
pub const FIG18_2_TO_6_CHIPLETS: f64 = 0.14;
/// §VII-C2: P99 increase for 6-chiplet when inter-chiplet latency goes
/// 60 → 100 cycles.
pub const INTERCHIPLET_60_TO_100: f64 = 0.45;

/// Fig 19: average P99 increase with 4 PEs (vs 8).
pub const FIG19_P99_4PES: f64 = 0.200;
/// Fig 19: average P99 increase with 2 PEs (vs 8).
pub const FIG19_P99_2PES: f64 = 0.357;
/// Fig 19 text: Encr requests denied with 4 PEs.
pub const FIG19_ENCR_FALLBACK_4PES: f64 = 0.16;
/// Fig 19 text: Encr requests denied with 2 PEs.
pub const FIG19_ENCR_FALLBACK_2PES: f64 = 0.39;
/// Fig 19 text: deadline misses with 4 / 2 PEs.
pub const FIG19_DEADLINE_MISSES: [(usize, f64); 2] = [(4, 0.082), (2, 0.217)];
/// Fig 19 text: throughput drop with 4 / 2 PEs.
pub const FIG19_THROUGHPUT_DROP: [(usize, f64); 2] = [(4, 0.11), (2, 0.25)];

/// Fig 20: P99 reduction vs RELIEF on IceLake and EmeraldRapids.
pub const FIG20_ICELAKE: f64 = 0.688;
/// Fig 20: the reduction grows on Emerald Rapids.
pub const FIG20_EMERALD: f64 = 0.717;

/// §VII-C5: AccelFlow gain vs RELIEF at 0.25x / 1x / 4x accelerator
/// speedups.
pub const SPEEDUP_SWEEP_GAINS: [(f64, f64); 3] = [(0.25, 1.4), (1.0, 2.2), (4.0, 3.9)];

/// §III Q2: fraction of sequences with at least one conditional, per
/// suite.
pub const BRANCHY_SEQUENCES: [(&str, f64); 4] = [
    ("SocialNet", 0.692),
    ("HotelReservation", 0.625),
    ("MediaServices", 0.825),
    ("TrainTicket", 0.538),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shares_sum_to_one() {
        let total: f64 = FIG1_SHARES.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 0.01, "total {total}");
    }

    #[test]
    fn reductions_are_fractions() {
        for (_, r) in FIG11_P99_REDUCTION.iter().chain(&FIG11_MEAN_REDUCTION) {
            assert!((0.0..1.0).contains(r));
        }
        for (_, r) in &FIG13_CUMULATIVE_REDUCTION {
            assert!((0.0..1.0).contains(r));
        }
    }

    #[test]
    fn ablation_ladder_monotone() {
        for w in FIG13_CUMULATIVE_REDUCTION.windows(2) {
            assert!(w[0].1 < w[1].1);
        }
    }
}
