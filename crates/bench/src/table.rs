//! Plain-text tables for experiment output.

use std::fmt::Write as _;

/// A simple left-aligned text table with a title.
///
/// # Example
///
/// ```
/// use accelflow_bench::table::Table;
///
/// let mut t = Table::new("Demo", &["service", "p99 (us)"]);
/// t.row(&["Login".to_string(), format!("{:.1}", 123.4)]);
/// let s = t.render();
/// assert!(s.contains("Login"));
/// assert!(s.contains("123.4"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}", cell, w = widths[i] + 2);
                let _ = i;
            }
            let _ = writeln!(out);
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().map(|w| w + 2).sum::<usize>().max(cols);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a ratio as `N.NNx`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a duration in microseconds.
pub fn us(d: accelflow_sim::time::SimDuration) -> String {
    format!("{:.1}", d.as_micros_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelflow_sim::time::SimDuration;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.row(&["x".into(), "1".into()]);
        t.row(&["longer-cell".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("== T =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header, rule, two rows (after title).
        assert_eq!(lines.len(), 5);
        assert!(lines[2].starts_with('-'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.707), "70.7%");
        assert_eq!(ratio(2.2), "2.20x");
        assert_eq!(us(SimDuration::from_micros(15)), "15.0");
    }
}
