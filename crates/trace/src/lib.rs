//! The AccelFlow trace programming model (paper §IV–§V).
//!
//! A **trace** is a software structure built by a CPU core that encodes
//! a sequence of accelerator invocations, optionally interleaved with
//! **branch conditions** (resolved on the fly by output dispatchers,
//! without CPU involvement), **data-format transformations**, and — in
//! its tail — the address of a follow-on trace in the **Accelerator
//! Trace Memory (ATM)**.
//!
//! This crate contains everything about traces that is independent of
//! the machine model:
//!
//! - [`kind`] — the nine accelerator kinds of the ensemble.
//! - [`cond`] — branch conditions and the payload flags they test.
//! - [`mod@format`] — data formats and transformation descriptors.
//! - [`ir`] — the trace intermediate representation and its
//!   *interpreter*: the pure `advance` function that output dispatchers
//!   execute (resolve branches, apply transforms, find the next
//!   accelerator).
//! - [`packed`] — the compact binary (nibble-stream) encoding; simple
//!   traces fit the paper's 8-byte budget (4 bits per accelerator).
//! - [`snapshot`] — checkpoint serialization of the trace IR (the
//!   `Snapshot` impls behind `Machine::{snapshot,restore}`; see
//!   `docs/CHECKPOINT.md`).
//! - [`builder`] — the paper's programming API: `seq` / `branch` /
//!   `trans` (Listing 1).
//! - [`atm`] — the Accelerator Trace Memory.
//! - [`compiler`] — automated trace synthesis from observed paths
//!   (the paper's stated future work).
//! - [`viz`] — text rendering of traces (Figures 2/4/7 as ASCII).
//! - [`templates`] — the paper's complete trace library T1–T12
//!   (Table II, Figs 2/4/7) and the Table I connectivity matrix derived
//!   from it.
//!
//! # Example: building Fig 4a's trace (T1)
//!
//! ```
//! use accelflow_trace::builder::TraceBuilder;
//! use accelflow_trace::cond::BranchCond;
//! use accelflow_trace::format::DataFormat;
//! use accelflow_trace::kind::AccelKind::*;
//!
//! let trace = TraceBuilder::new("func_req")
//!     .seq([Tcp, Decr, Rpc, Dser])
//!     .branch(
//!         BranchCond::Compressed,
//!         |t| t.trans(DataFormat::Json, DataFormat::Str).seq([Dcmp]),
//!         |t| t,
//!     )
//!     .seq([Ldb])
//!     .to_cpu()
//!     .build();
//! assert_eq!(trace.accelerator_count(), 6); // Tcp Decr Rpc Dser Dcmp Ldb
//! ```

#![warn(missing_docs)]

pub mod atm;
pub mod builder;
pub mod compiler;
pub mod cond;
pub mod format;
pub mod ir;
pub mod kind;
pub mod packed;
pub mod snapshot;
pub mod templates;
pub mod viz;

pub use atm::{Atm, AtmAddr};
pub use builder::TraceBuilder;
pub use cond::{BranchCond, PayloadFlags};
pub use format::DataFormat;
pub use ir::{Advance, GlueAction, Next, PositionMark, Slot, Trace};
pub use kind::AccelKind;
pub use templates::{TemplateId, TraceLibrary};
