//! Automated trace synthesis (the paper's §V-4 / §IX future work:
//! "we will explore automating trace generation").
//!
//! Developers usually hand-build traces with
//! [`crate::builder::TraceBuilder`]. This module synthesizes a trace
//! *from examples*: given the accelerator sequences a service executes
//! under different payload conditions (e.g. collected by profiling),
//! [`synthesize`] produces a single branching trace whose resolved
//! paths reproduce every example.
//!
//! The algorithm is longest-common-prefix factoring: all variants share
//! their common prefix; at the first divergence, a branch condition
//! that separates the variants is chosen from the flags they were
//! observed under, and each side is synthesized recursively.

use crate::builder::TraceBuilder;
use crate::cond::{BranchCond, PayloadFlags};
use crate::ir::Trace;
use crate::kind::AccelKind;

/// One observed execution variant: the payload conditions and the
/// accelerator sequence the service ran under them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObservedPath {
    /// The payload flags in force.
    pub flags: PayloadFlags,
    /// The accelerator sequence executed.
    pub accels: Vec<AccelKind>,
}

impl ObservedPath {
    /// Creates an observation.
    pub fn new(flags: PayloadFlags, accels: impl IntoIterator<Item = AccelKind>) -> Self {
        ObservedPath {
            flags,
            accels: accels.into_iter().collect(),
        }
    }
}

/// Errors from trace synthesis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthesisError {
    /// No observations were provided.
    NoObservations,
    /// Two observations diverge but no tested condition separates them.
    Indistinguishable {
        /// Index of the first conflicting observation.
        first: usize,
        /// Index of the second.
        second: usize,
    },
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::NoObservations => write!(f, "no observed paths to synthesize from"),
            SynthesisError::Indistinguishable { first, second } => write!(
                f,
                "observations {first} and {second} diverge but share all payload flags"
            ),
        }
    }
}

impl std::error::Error for SynthesisError {}

const CONDS: [BranchCond; 5] = [
    BranchCond::Compressed,
    BranchCond::Hit,
    BranchCond::Found,
    BranchCond::Exception,
    BranchCond::CacheCompressed,
];

/// Synthesizes a branching trace that reproduces every observed path.
///
/// # Errors
///
/// Fails if no observations are given, or if two observations execute
/// different sequences under identical flag values (no branch condition
/// can tell them apart).
///
/// # Example
///
/// ```
/// use accelflow_trace::compiler::{synthesize, ObservedPath};
/// use accelflow_trace::cond::PayloadFlags;
/// use accelflow_trace::kind::AccelKind::*;
///
/// // Two profiled runs of "receive function request": with and
/// // without a compressed payload.
/// let plain = PayloadFlags::default();
/// let zipped = PayloadFlags { compressed: true, ..Default::default() };
/// let trace = synthesize(
///     "learned_t1",
///     &[
///         ObservedPath::new(plain, [Tcp, Decr, Rpc, Dser, Ldb]),
///         ObservedPath::new(zipped, [Tcp, Decr, Rpc, Dser, Dcmp, Ldb]),
///     ],
/// )
/// .unwrap();
/// assert_eq!(trace.resolve_path(&plain).len(), 6); // 5 accels + CPU
/// assert_eq!(trace.resolve_path(&zipped).len(), 7);
/// assert_eq!(trace.branch_count(), 1);
/// ```
pub fn synthesize(name: &str, observations: &[ObservedPath]) -> Result<Trace, SynthesisError> {
    if observations.is_empty() {
        return Err(SynthesisError::NoObservations);
    }
    // Deduplicate identical sequences (flags may differ; any of them
    // reaches the same path).
    let indices: Vec<usize> = (0..observations.len()).collect();
    let builder = synth_rec(TraceBuilder::new(name), observations, &indices, 0)?;
    Ok(builder.to_cpu().build())
}

fn synth_rec(
    mut builder: TraceBuilder,
    obs: &[ObservedPath],
    active: &[usize],
    depth: usize,
) -> Result<TraceBuilder, SynthesisError> {
    // Emit the longest common prefix of the active sequences.
    let mut pos = depth;
    loop {
        let first = &obs[active[0]].accels;
        if pos >= first.len() {
            break;
        }
        let kind = first[pos];
        if active
            .iter()
            .all(|&i| obs[i].accels.get(pos) == Some(&kind))
        {
            builder = builder.invoke(kind);
            pos += 1;
        } else {
            break;
        }
    }
    // All sequences fully emitted?
    if active.iter().all(|&i| obs[i].accels.len() == pos) {
        return Ok(builder);
    }
    // Divergence (or some sequences end here): find a condition that
    // splits the active set into two non-empty halves consistent with
    // the remaining suffixes.
    for cond in CONDS {
        let (yes, no): (Vec<usize>, Vec<usize>) =
            active.iter().partition(|&&i| cond.evaluate(&obs[i].flags));
        if yes.is_empty() || no.is_empty() {
            continue;
        }
        // The split must actually separate the differing suffixes: all
        // members of each side must agree on their next step.
        let agrees = |side: &[usize]| {
            let next = obs[side[0]].accels.get(pos);
            side.iter().all(|&i| obs[i].accels.get(pos) == next)
        };
        if !agrees(&yes) || !agrees(&no) {
            continue;
        }
        // Build both arms up front (each arm starts from an empty
        // sub-builder, exactly what `branch` hands its closures).
        let yes_arm = synth_rec(TraceBuilder::new(""), obs, &yes, pos)?;
        let no_arm = synth_rec(TraceBuilder::new(""), obs, &no, pos)?;
        return Ok(builder.branch(cond, move |_| yes_arm, move |_| no_arm));
    }
    // No condition separates the conflicting observations.
    let first = active[0];
    let second = active
        .iter()
        .copied()
        .find(|&i| obs[i].accels.get(pos) != obs[first].accels.get(pos))
        .unwrap_or(first);
    Err(SynthesisError::Indistinguishable { first, second })
}

#[cfg(test)]
mod tests {
    use super::*;
    use AccelKind::*;

    fn flags(compressed: bool, hit: bool, exception: bool) -> PayloadFlags {
        PayloadFlags {
            compressed,
            hit,
            exception,
            ..Default::default()
        }
    }

    #[test]
    fn straight_line_needs_no_branch() {
        let t = synthesize(
            "line",
            &[ObservedPath::new(
                flags(false, false, false),
                [Ser, Encr, Tcp],
            )],
        )
        .unwrap();
        assert_eq!(t.branch_count(), 0);
        assert_eq!(t.accelerator_count(), 3);
    }

    #[test]
    fn identical_paths_under_different_flags_merge() {
        let t = synthesize(
            "merge",
            &[
                ObservedPath::new(flags(false, false, false), [Ser, Tcp]),
                ObservedPath::new(flags(true, true, false), [Ser, Tcp]),
            ],
        )
        .unwrap();
        assert_eq!(t.branch_count(), 0);
    }

    #[test]
    fn learns_the_t1_branch() {
        let plain = flags(false, false, false);
        let zipped = flags(true, false, false);
        let t = synthesize(
            "t1ish",
            &[
                ObservedPath::new(plain, vec![Tcp, Decr, Rpc, Dser, Ldb]),
                ObservedPath::new(zipped, vec![Tcp, Decr, Rpc, Dser, Dcmp, Ldb]),
            ],
        )
        .unwrap();
        assert_eq!(t.branch_count(), 1);
        let p = t.resolve_path(&plain);
        let z = t.resolve_path(&zipped);
        assert_eq!(p.len(), 6);
        assert_eq!(z.len(), 7);
        assert!(z
            .iter()
            .any(|s| matches!(s, crate::ir::PathStep::Accel(Dcmp))));
    }

    #[test]
    fn learns_nested_branches() {
        // Hit? selects LdB-vs-resend; within miss, Exception? selects
        // the error path.
        let hit = flags(false, true, false);
        let miss = flags(false, false, false);
        let miss_exc = flags(false, false, true);
        let t = synthesize(
            "nested",
            &[
                ObservedPath::new(hit, vec![Tcp, Decr, Dser, Ldb]),
                ObservedPath::new(miss, vec![Tcp, Decr, Dser, Ser, Encr, Tcp]),
                ObservedPath::new(miss_exc, vec![Tcp, Decr, Dser, Ser, Rpc, Encr, Tcp]),
            ],
        )
        .unwrap();
        assert_eq!(t.branch_count(), 2);
        for (f, len) in [(hit, 5), (miss, 7), (miss_exc, 8)] {
            assert_eq!(t.resolve_path(&f).len(), len, "{f:?}");
        }
    }

    #[test]
    fn conflicting_observations_are_rejected() {
        let f = flags(false, false, false);
        let err = synthesize(
            "conflict",
            &[
                ObservedPath::new(f, vec![Ser, Tcp]),
                ObservedPath::new(f, vec![Ser, Encr]),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, SynthesisError::Indistinguishable { .. }));
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(
            synthesize("none", &[]).unwrap_err(),
            SynthesisError::NoObservations
        );
    }

    #[test]
    fn prefix_only_divergence() {
        // One path is a strict prefix of the other: the branch decides
        // whether to continue.
        let stop = flags(false, true, false);
        let go = flags(false, false, false);
        let t = synthesize(
            "prefix",
            &[
                ObservedPath::new(stop, vec![Tcp, Dser]),
                ObservedPath::new(go, vec![Tcp, Dser, Ser, Tcp]),
            ],
        )
        .unwrap();
        assert_eq!(t.resolve_path(&stop).len(), 3);
        assert_eq!(t.resolve_path(&go).len(), 5);
    }

    #[test]
    fn synthesized_traces_pack() {
        let t = synthesize(
            "packable",
            &[
                ObservedPath::new(flags(true, false, false), vec![Tcp, Dcmp, Ldb]),
                ObservedPath::new(flags(false, false, false), vec![Tcp, Ldb]),
            ],
        )
        .unwrap();
        assert!(crate::packed::pack(&t).is_ok());
    }
}
