//! Data formats and the transformations between them (paper §III Q3,
//! §V-2).
//!
//! Data produced by one accelerator is sometimes consumed by the next
//! in a different representation; the transformations are simple
//! (string ↔ BSON ↔ JSON and similar), so AccelFlow's output dispatcher
//! performs them with a small Data Transform Engine (a simplified
//! (De)Ser accelerator without nested-message support).

use std::fmt;

/// A wire/application data representation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum DataFormat {
    /// JSON text.
    Json = 0,
    /// Binary JSON (MongoDB's BSON).
    Bson = 1,
    /// Plain string/bytes.
    Str = 2,
    /// Protocol-buffer wire format.
    Protobuf = 3,
    /// Raw/opaque bytes (no structure).
    Raw = 4,
}

impl DataFormat {
    /// All formats, in code order.
    pub const ALL: [DataFormat; 5] = [
        DataFormat::Json,
        DataFormat::Bson,
        DataFormat::Str,
        DataFormat::Protobuf,
        DataFormat::Raw,
    ];

    /// 4-bit code for the packed encoding.
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`DataFormat::code`].
    pub fn from_code(code: u8) -> Option<DataFormat> {
        DataFormat::ALL.get(code as usize).copied()
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DataFormat::Json => "JSON",
            DataFormat::Bson => "BSON",
            DataFormat::Str => "string",
            DataFormat::Protobuf => "protobuf",
            DataFormat::Raw => "raw",
        }
    }
}

impl fmt::Display for DataFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A data-format transformation node in a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Transform {
    /// Source representation.
    pub src: DataFormat,
    /// Destination representation.
    pub dst: DataFormat,
}

impl Transform {
    /// Dispatcher glue instructions to orchestrate the transformation
    /// of `bytes` of payload (paper §VII-B2: "12 RISC instructions for
    /// 2KB payloads" — bulk load, DTE invocation, bulk store; larger
    /// payloads repeat the bulk moves per 2 KB chunk).
    pub fn dispatcher_instructions(&self, bytes: u64) -> u32 {
        let chunks = bytes.div_ceil(2048).max(1) as u32;
        12 * chunks
    }

    /// Size ratio of the output relative to the input. Text→binary
    /// densifies slightly; binary→text inflates; same-format is
    /// identity.
    pub fn size_ratio(&self) -> f64 {
        use DataFormat::*;
        let density = |f: DataFormat| match f {
            Json => 1.0,
            Str => 0.95,
            Bson => 0.8,
            Protobuf => 0.7,
            Raw => 1.0,
        };
        density(self.dst) / density(self.src)
    }
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{}", self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for fmt in DataFormat::ALL {
            assert_eq!(DataFormat::from_code(fmt.code()), Some(fmt));
        }
        assert_eq!(DataFormat::from_code(9), None);
    }

    #[test]
    fn dispatcher_instruction_count_matches_paper() {
        let t = Transform {
            src: DataFormat::Json,
            dst: DataFormat::Str,
        };
        assert_eq!(t.dispatcher_instructions(2048), 12);
        assert_eq!(t.dispatcher_instructions(0), 12);
        assert_eq!(t.dispatcher_instructions(4096), 24);
        assert_eq!(t.dispatcher_instructions(4097), 36);
    }

    #[test]
    fn size_ratio_direction() {
        let densify = Transform {
            src: DataFormat::Json,
            dst: DataFormat::Protobuf,
        };
        let inflate = Transform {
            src: DataFormat::Protobuf,
            dst: DataFormat::Json,
        };
        let identity = Transform {
            src: DataFormat::Str,
            dst: DataFormat::Str,
        };
        assert!(densify.size_ratio() < 1.0);
        assert!(inflate.size_ratio() > 1.0);
        assert_eq!(identity.size_ratio(), 1.0);
    }

    #[test]
    fn display() {
        let t = Transform {
            src: DataFormat::Json,
            dst: DataFormat::Str,
        };
        assert_eq!(t.to_string(), "JSON→string");
    }
}
