//! Text rendering of traces — the reproduction's stand-in for the
//! paper's Figures 2, 4, and 7.
//!
//! [`render`] lays a trace out as an indented flow diagram: accelerator
//! boxes in sequence, branch conditions with their two arms, data
//! transformations, and trace tails (CPU notification or ATM chain,
//! the paper's asterisk).

use std::fmt::Write as _;

use crate::ir::{Slot, Trace};

/// Renders a trace as an indented ASCII flow diagram.
///
/// # Example
///
/// ```
/// use accelflow_trace::templates::{TemplateId, TraceLibrary};
/// use accelflow_trace::viz::render;
///
/// let lib = TraceLibrary::standard();
/// let art = render(lib.entry(TemplateId::T1));
/// assert!(art.contains("[TCP]"));
/// assert!(art.contains("Compressed?"));
/// ```
pub fn render(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}:", trace.name());
    render_range(&mut out, trace.slots(), 0, trace.slots().len(), 1);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Renders slots `[from, to)` at the given indent depth, following the
/// structured layout the builder produces (branch arm(s) followed by
/// an optional join jump).
fn render_range(out: &mut String, slots: &[Slot], from: usize, to: usize, depth: usize) {
    let mut i = from;
    while i < to {
        match &slots[i] {
            Slot::Accel(kind) => {
                indent(out, depth);
                let _ = writeln!(out, "[{kind}]");
                i += 1;
            }
            Slot::Transform(t) => {
                indent(out, depth);
                let _ = writeln!(out, "(transform {t})");
                i += 1;
            }
            Slot::ForkToCpu => {
                indent(out, depth);
                let _ = writeln!(out, "=> copy to CPU (continue)");
                i += 1;
            }
            Slot::ToCpu => {
                indent(out, depth);
                let _ = writeln!(out, "=> CPU");
                i += 1;
            }
            Slot::NextTrace(addr) => {
                indent(out, depth);
                let _ = writeln!(out, "=> * next trace @ {addr}");
                i += 1;
            }
            Slot::Jump(t) => {
                // Join jumps are layout artifacts; skip to the target.
                i = *t as usize;
            }
            Slot::Branch {
                cond,
                on_true,
                on_false,
            } => {
                indent(out, depth);
                let _ = writeln!(out, "if {cond}");
                let (t0, f0) = (*on_true as usize, *on_false as usize);
                // The true arm spans [t0, end_of_true) where the arm
                // either ends at a terminal or at the jump before f0.
                let true_end = f0.min(to);
                indent(out, depth);
                let _ = writeln!(out, "then:");
                render_range(out, slots, t0, true_end, depth + 1);
                // The false arm runs until the join (the true arm's
                // jump target) or the end.
                let join = join_of(slots, t0, true_end).unwrap_or(to);
                if f0 < join {
                    indent(out, depth);
                    let _ = writeln!(out, "else:");
                    render_range(out, slots, f0, join.min(to), depth + 1);
                }
                i = join.min(to);
            }
        }
    }
}

/// Finds where a branch's arms rejoin: the target of the last `Jump`
/// inside the true arm, if any.
fn join_of(slots: &[Slot], from: usize, to: usize) -> Option<usize> {
    slots[from..to.min(slots.len())]
        .iter()
        .rev()
        .find_map(|s| match s {
            Slot::Jump(t) => Some(*t as usize),
            _ => None,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::{TemplateId, TraceLibrary};

    #[test]
    fn renders_every_template() {
        let lib = TraceLibrary::standard();
        for id in TemplateId::ALL {
            let art = render(lib.entry(id));
            assert!(art.starts_with(&format!("{}:", id.name())), "{id}");
            assert!(art.contains("=>"), "{id}: must show a terminal\n{art}");
        }
    }

    #[test]
    fn t1_shows_branch_structure() {
        let lib = TraceLibrary::standard();
        let art = render(lib.entry(TemplateId::T1));
        assert!(art.contains("if Compressed?"), "{art}");
        assert!(art.contains("then:"), "{art}");
        assert!(art.contains("(transform JSON→string)"), "{art}");
        assert!(art.contains("[Dcmp]"), "{art}");
        // LdB appears after the branch (the rejoined path).
        let ldb = art.find("[LdB]").unwrap();
        let dcmp = art.find("[Dcmp]").unwrap();
        assert!(ldb > dcmp);
    }

    #[test]
    fn t4_shows_atm_tail() {
        let lib = TraceLibrary::standard();
        let art = render(lib.entry(TemplateId::T4));
        assert!(art.contains("* next trace @"), "{art}");
    }

    #[test]
    fn t5_shows_divergent_arms() {
        let lib = TraceLibrary::standard();
        let art = render(lib.entry(TemplateId::T5));
        assert!(art.contains("if Hit?"), "{art}");
        assert!(art.contains("else:"), "{art}");
        assert!(art.contains("=> CPU"), "{art}");
        assert!(art.contains("* next trace"), "{art}");
    }

    #[test]
    fn t6_shows_fork() {
        let lib = TraceLibrary::standard();
        let art = render(lib.entry(TemplateId::T6));
        assert!(art.contains("copy to CPU"), "{art}");
        assert!(art.contains("if Found?"), "{art}");
        assert!(art.contains("if C-Compressed?"), "{art}");
    }
}
