//! The compact binary encoding of traces.
//!
//! The paper dedicates 4 bits per accelerator ID and caps simple traces
//! at 8 bytes (16 nibbles); longer sequences are split into subtraces
//! chained through the ATM. The paper does not specify the bit layout
//! for branch/transform/tail fields, so this module defines one:
//! a nibble stream where values 0–8 are accelerator IDs and values 9–15
//! introduce structured records:
//!
//! | nibble | meaning | payload nibbles |
//! |--------|---------|-----------------|
//! | 0–8    | `Accel(kind)` | — |
//! | 9      | `ToCpu` | — |
//! | 10     | `Branch` | cond, true-target, false-target (slot indices) |
//! | 11     | `Transform` | src format, dst format |
//! | 12     | `NextTrace` | 4 nibbles of ATM address |
//! | 13     | `Jump` | target (slot index) |
//! | 14     | `ForkToCpu` | — |
//! | 15     | padding / custom-cond extension |
//!
//! A `Custom` branch condition is encoded as cond nibble 5 followed by
//! four extra nibbles (mask, expect). Branch/jump targets are *slot*
//! indices, so they survive the round trip unchanged; traces with more
//! than 15 addressable slots cannot be packed and must be split
//! ([`split_for_packing`]).

use crate::atm::AtmAddr;
use crate::cond::BranchCond;
use crate::format::{DataFormat, Transform};
use crate::ir::{Slot, Trace};
use crate::kind::AccelKind;

/// Error produced when a trace cannot be packed or unpacked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PackError {
    /// A branch or jump target exceeds the 4-bit slot index space.
    TargetTooLarge(u8),
    /// The byte stream ended mid-record.
    Truncated,
    /// An undefined code appeared at this nibble offset.
    BadCode(usize),
    /// The decoded program failed validation (bad control-flow
    /// targets).
    InvalidProgram(String),
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackError::TargetTooLarge(t) => write!(f, "slot target {t} exceeds 4-bit index"),
            PackError::Truncated => write!(f, "packed trace truncated"),
            PackError::BadCode(at) => write!(f, "undefined code at nibble {at}"),
            PackError::InvalidProgram(why) => write!(f, "decoded program invalid: {why}"),
        }
    }
}

impl std::error::Error for PackError {}

struct NibbleWriter {
    nibbles: Vec<u8>,
}

impl NibbleWriter {
    fn new() -> Self {
        NibbleWriter {
            nibbles: Vec::new(),
        }
    }

    fn push(&mut self, n: u8) {
        debug_assert!(n < 16);
        self.nibbles.push(n);
    }

    fn push_u8(&mut self, v: u8) {
        self.push(v >> 4);
        self.push(v & 0xF);
    }

    fn push_u16(&mut self, v: u16) {
        self.push_u8((v >> 8) as u8);
        self.push_u8((v & 0xFF) as u8);
    }

    fn into_bytes(mut self) -> Vec<u8> {
        if self.nibbles.len() % 2 == 1 {
            self.nibbles.push(0xF); // padding
        }
        self.nibbles
            .chunks(2)
            .map(|pair| (pair[0] << 4) | pair[1])
            .collect()
    }
}

struct NibbleReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> NibbleReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        NibbleReader { bytes, pos: 0 }
    }

    fn next(&mut self) -> Option<u8> {
        let byte = self.bytes.get(self.pos / 2)?;
        let n = if self.pos.is_multiple_of(2) {
            byte >> 4
        } else {
            byte & 0xF
        };
        self.pos += 1;
        Some(n)
    }

    fn next_or(&mut self) -> Result<u8, PackError> {
        self.next().ok_or(PackError::Truncated)
    }

    fn next_u8(&mut self) -> Result<u8, PackError> {
        Ok((self.next_or()? << 4) | self.next_or()?)
    }

    fn next_u16(&mut self) -> Result<u16, PackError> {
        Ok(((self.next_u8()? as u16) << 8) | self.next_u8()? as u16)
    }

    fn exhausted_or_padding(&mut self) -> bool {
        match self.next() {
            None => true,
            Some(0xF) => self.exhausted_or_padding(),
            Some(_) => false,
        }
    }
}

/// Packs a trace into its binary form.
///
/// # Errors
///
/// Fails with [`PackError::TargetTooLarge`] if any branch/jump target
/// exceeds 15; split such traces first with [`split_for_packing`].
///
/// # Example
///
/// ```
/// use accelflow_trace::ir::{Slot, Trace};
/// use accelflow_trace::kind::AccelKind::*;
/// use accelflow_trace::packed::{pack, unpack};
///
/// let t = Trace::new("t2", vec![
///     Slot::Accel(Ser), Slot::Accel(Rpc), Slot::Accel(Encr), Slot::Accel(Tcp),
///     Slot::ToCpu,
/// ]);
/// let bytes = pack(&t).unwrap();
/// assert!(bytes.len() <= 8, "simple traces fit the paper's 8-byte budget");
/// let back = unpack("t2", &bytes).unwrap();
/// assert_eq!(back.slots(), t.slots());
/// ```
pub fn pack(trace: &Trace) -> Result<Vec<u8>, PackError> {
    let mut w = NibbleWriter::new();
    for slot in trace.slots() {
        match slot {
            Slot::Accel(kind) => w.push(kind.id()),
            Slot::ToCpu => w.push(9),
            Slot::Branch {
                cond,
                on_true,
                on_false,
            } => {
                if *on_true > 15 {
                    return Err(PackError::TargetTooLarge(*on_true));
                }
                if *on_false > 15 {
                    return Err(PackError::TargetTooLarge(*on_false));
                }
                w.push(10);
                w.push(cond.code());
                if let BranchCond::Custom { mask, expect } = cond {
                    w.push_u8(*mask);
                    w.push_u8(*expect);
                }
                w.push(*on_true);
                w.push(*on_false);
            }
            Slot::Transform(t) => {
                w.push(11);
                w.push(t.src.code());
                w.push(t.dst.code());
            }
            Slot::NextTrace(addr) => {
                w.push(12);
                w.push_u16(addr.0);
            }
            Slot::Jump(t) => {
                if *t > 15 {
                    return Err(PackError::TargetTooLarge(*t));
                }
                w.push(13);
                w.push(*t);
            }
            Slot::ForkToCpu => w.push(14),
        }
    }
    Ok(w.into_bytes())
}

/// Unpacks a binary trace produced by [`pack`].
///
/// # Errors
///
/// Fails if the stream is truncated or contains undefined codes.
pub fn unpack(name: impl Into<String>, bytes: &[u8]) -> Result<Trace, PackError> {
    let mut r = NibbleReader::new(bytes);
    let mut slots = Vec::new();
    loop {
        let at = r.pos;
        let code = match r.next() {
            None => break,
            Some(c) => c,
        };
        match code {
            0..=8 => slots.push(Slot::Accel(
                AccelKind::from_id(code).expect("codes 0-8 are kinds"),
            )),
            9 => slots.push(Slot::ToCpu),
            10 => {
                let cond_code = r.next_or()?;
                let (mask, expect) = if cond_code == 5 {
                    (r.next_u8()?, r.next_u8()?)
                } else {
                    (0, 0)
                };
                let cond =
                    BranchCond::from_code(cond_code, mask, expect).ok_or(PackError::BadCode(at))?;
                let on_true = r.next_or()?;
                let on_false = r.next_or()?;
                slots.push(Slot::Branch {
                    cond,
                    on_true,
                    on_false,
                });
            }
            11 => {
                let src = DataFormat::from_code(r.next_or()?).ok_or(PackError::BadCode(at))?;
                let dst = DataFormat::from_code(r.next_or()?).ok_or(PackError::BadCode(at))?;
                slots.push(Slot::Transform(Transform { src, dst }));
            }
            12 => slots.push(Slot::NextTrace(AtmAddr(r.next_u16()?))),
            13 => slots.push(Slot::Jump(r.next_or()?)),
            14 => slots.push(Slot::ForkToCpu),
            15 => {
                // Padding: valid only as the trailing nibble(s).
                if !r.exhausted_or_padding() {
                    return Err(PackError::BadCode(at));
                }
                break;
            }
            _ => unreachable!("nibbles are < 16"),
        }
    }
    Trace::try_new(name, slots).map_err(PackError::InvalidProgram)
}

/// Splits a trace whose slot count exceeds the packable window into a
/// head trace plus a remainder, chaining head→remainder through the
/// given ATM address (paper §IV-A: "If a sequence exceeds 8 bytes,
/// AccelFlow would split it into multiple subtraces").
///
/// A cut at `c` is *safe* when every control transfer in the head
/// (indices `< c`) targets a slot `<= c`: a target of exactly `c` lands
/// on the head's appended `NextTrace` slot, which chains to the first
/// tail slot — the same place the target meant in the original trace.
/// The largest safe cut within the packable window is chosen, so every
/// split strictly shrinks the tail and repeated splits terminate.
///
/// Returns `None` if the trace already fits, or if no safe cut exists
/// (a control transfer near the start spans past the packable window —
/// such a trace cannot be encoded in 4-bit slot indices at all).
pub fn split_for_packing(
    trace: &Trace,
    max_slots: usize,
    chain_at: AtmAddr,
) -> Option<(Trace, Trace)> {
    let n = trace.slots().len();
    if n <= max_slots || max_slots < 2 {
        return None;
    }
    // Scan candidate cuts left to right, tracking the furthest target
    // of any transfer already inside the head window; a candidate is
    // safe when no such target points beyond it. The old
    // first-target-minus-one rule could leave a branch in the head with
    // targets outside it, producing an invalid (panicking) head — or,
    // with a branch targeting slot 1, a degenerate one-slot head.
    let limit = (max_slots - 1).min(n - 1);
    let mut best = None;
    let mut furthest = 0usize;
    for c in 1..=limit {
        match trace.slots()[c - 1] {
            Slot::Branch {
                on_true, on_false, ..
            } => furthest = furthest.max(on_true as usize).max(on_false as usize),
            Slot::Jump(t) => furthest = furthest.max(t as usize),
            _ => {}
        }
        if furthest <= c {
            best = Some(c);
        }
    }
    let cut = best?;

    let mut head: Vec<Slot> = trace.slots()[..cut].to_vec();
    head.push(Slot::NextTrace(chain_at));
    let tail: Vec<Slot> = trace.slots()[cut..]
        .iter()
        .map(|s| match s {
            Slot::Branch {
                cond,
                on_true,
                on_false,
            } => Slot::Branch {
                cond: *cond,
                on_true: on_true - cut as u8,
                on_false: on_false - cut as u8,
            },
            Slot::Jump(t) => Slot::Jump(t - cut as u8),
            other => *other,
        })
        .collect();
    Some((
        Trace::new(format!("{}.head", trace.name()), head),
        Trace::new(format!("{}.tail", trace.name()), tail),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::PayloadFlags;
    use crate::ir::PathStep;

    fn t1_like() -> Trace {
        Trace::new(
            "t1",
            vec![
                Slot::Accel(AccelKind::Tcp),
                Slot::Accel(AccelKind::Decr),
                Slot::Accel(AccelKind::Rpc),
                Slot::Accel(AccelKind::Dser),
                Slot::Branch {
                    cond: BranchCond::Compressed,
                    on_true: 5,
                    on_false: 7,
                },
                Slot::Transform(Transform {
                    src: DataFormat::Json,
                    dst: DataFormat::Str,
                }),
                Slot::Accel(AccelKind::Dcmp),
                Slot::Accel(AccelKind::Ldb),
                Slot::ToCpu,
            ],
        )
    }

    #[test]
    fn roundtrip_with_branch_and_transform() {
        let t = t1_like();
        let bytes = pack(&t).unwrap();
        let back = unpack("t1", &bytes).unwrap();
        assert_eq!(back.slots(), t.slots());
    }

    #[test]
    fn simple_sequences_fit_eight_bytes() {
        // Paper: 4 bits/accelerator, up to 16 invocations in 8 bytes.
        let slots: Vec<Slot> = (0..15)
            .map(|i| Slot::Accel(AccelKind::from_id(i % 9).unwrap()))
            .chain([Slot::ToCpu])
            .collect();
        let t = Trace::new("long", slots);
        let bytes = pack(&t).unwrap();
        assert_eq!(bytes.len(), 8);
    }

    #[test]
    fn roundtrip_all_slot_kinds() {
        let t = Trace::new(
            "all",
            vec![
                Slot::Accel(AccelKind::Dser),
                Slot::Branch {
                    cond: BranchCond::Custom {
                        mask: 0x0F,
                        expect: 0x03,
                    },
                    on_true: 2,
                    on_false: 4,
                },
                Slot::Accel(AccelKind::Cmp),
                Slot::Jump(5),
                Slot::ForkToCpu,
                Slot::NextTrace(AtmAddr(0xBEEF)),
            ],
        );
        let bytes = pack(&t).unwrap();
        let back = unpack("all", &bytes).unwrap();
        assert_eq!(back.slots(), t.slots());
    }

    #[test]
    fn truncated_stream_errors() {
        let t = t1_like();
        let bytes = pack(&t).unwrap();
        // Cut inside the branch record (nibbles 4..8 hold the branch).
        assert_eq!(unpack("x", &bytes[..3]).unwrap_err(), PackError::Truncated);
    }

    #[test]
    fn oversized_targets_rejected() {
        let mut slots = vec![Slot::Accel(AccelKind::Tcp); 17];
        slots.push(Slot::Branch {
            cond: BranchCond::Hit,
            on_true: 18,
            on_false: 19,
        });
        slots.push(Slot::ToCpu);
        slots.push(Slot::ToCpu);
        let t = Trace::new("big", slots);
        assert!(matches!(pack(&t), Err(PackError::TargetTooLarge(_))));
    }

    #[test]
    fn split_preserves_execution_path() {
        let slots: Vec<Slot> = (0..20)
            .map(|i| Slot::Accel(AccelKind::from_id(i % 9).unwrap()))
            .chain([Slot::ToCpu])
            .collect();
        let t = Trace::new("long", slots);
        let (head, tail) = split_for_packing(&t, 15, AtmAddr(7)).unwrap();
        assert!(pack(&head).is_ok());
        assert!(pack(&tail).is_ok());

        // Head path + tail path must equal the original path with the
        // chain marker in between.
        let flags = PayloadFlags::default();
        let mut joined = head.resolve_path(&flags);
        assert_eq!(joined.pop(), Some(PathStep::Chain(AtmAddr(7))));
        joined.extend(tail.resolve_path(&flags));
        assert_eq!(joined, t.resolve_path(&flags));
    }

    #[test]
    fn split_not_needed_for_short_traces() {
        assert!(split_for_packing(&t1_like(), 15, AtmAddr(0)).is_none());
    }

    /// Builds a 20-slot trace whose first slot is a branch targeting
    /// slots 1 and `far` — the shape that broke the old cut rule.
    fn leading_branch_trace(far: u8) -> Trace {
        let mut slots = vec![Slot::Branch {
            cond: BranchCond::Compressed,
            on_true: 1,
            on_false: far,
        }];
        slots.extend((0..18).map(|i| Slot::Accel(AccelKind::from_id(i % 9).unwrap())));
        slots.push(Slot::ToCpu);
        Trace::new("lead", slots)
    }

    #[test]
    fn split_with_branch_targeting_slot_one() {
        // Regression: the old `first_target - 1` cut put the branch in a
        // one-slot head whose false target (5) pointed past the head,
        // panicking inside Trace::new. The safe cut must keep both
        // targets inside the head window.
        let t = leading_branch_trace(5);
        let (head, tail) = split_for_packing(&t, 15, AtmAddr(9)).unwrap();
        assert!(head.slots().len() >= 6, "head covers both branch arms");
        assert!(tail.slots().len() < t.slots().len(), "tail shrank");
        assert!(pack(&head).is_ok());
        assert!(pack(&tail).is_ok());
        for compressed in [false, true] {
            let flags = PayloadFlags {
                compressed,
                ..Default::default()
            };
            let mut joined = head.resolve_path(&flags);
            assert_eq!(joined.pop(), Some(PathStep::Chain(AtmAddr(9))));
            joined.extend(tail.resolve_path(&flags));
            assert_eq!(joined, t.resolve_path(&flags), "compressed={compressed}");
        }
    }

    #[test]
    fn split_repeats_until_packable() {
        // Every split must strictly shrink the tail so the loop below
        // terminates; the joined path must equal the original.
        let slots: Vec<Slot> = (0..40)
            .map(|i| Slot::Accel(AccelKind::from_id(i % 9).unwrap()))
            .chain([Slot::ToCpu])
            .collect();
        let mut rest = Trace::new("long40", slots);
        let original = rest.resolve_path(&PayloadFlags::default());
        let mut joined = Vec::new();
        let mut rounds = 0;
        while let Some((head, tail)) = split_for_packing(&rest, 15, AtmAddr(rounds)) {
            assert!(pack(&head).is_ok());
            assert!(tail.slots().len() < rest.slots().len(), "tail must shrink");
            let mut p = head.resolve_path(&PayloadFlags::default());
            assert_eq!(p.pop(), Some(PathStep::Chain(AtmAddr(rounds))));
            joined.extend(p);
            rest = tail;
            rounds += 1;
            assert!(rounds < 10, "splitting did not terminate");
        }
        assert!(pack(&rest).is_ok());
        joined.extend(rest.resolve_path(&PayloadFlags::default()));
        assert_eq!(joined, original);
    }

    #[test]
    fn split_with_branch_spanning_window_returns_none() {
        // A leading branch whose false arm lands beyond the packable
        // window admits no safe cut; the old code produced a corrupt
        // head here instead of declining.
        let mut slots = vec![Slot::Branch {
            cond: BranchCond::Hit,
            on_true: 1,
            on_false: 18,
        }];
        slots.extend((0..18).map(|_| Slot::Accel(AccelKind::Tcp)));
        slots.push(Slot::ToCpu);
        let t = Trace::new("wide", slots);
        assert!(split_for_packing(&t, 8, AtmAddr(0)).is_none());
    }
}
