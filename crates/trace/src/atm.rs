//! The Accelerator Trace Memory (paper §IV-A).
//!
//! The ATM is a special on-chip memory where cores pre-store follow-on
//! traces. When an output dispatcher reaches a trace tail holding an
//! ATM address, it loads the stored trace and deposits it into the next
//! accelerator's input queue — no CPU involvement.

use std::fmt;

use crate::ir::Trace;

/// Address of a trace in the ATM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtmAddr(pub u16);

impl fmt::Display for AtmAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "atm:{:#06x}", self.0)
    }
}

/// The on-chip trace memory.
///
/// # Example
///
/// ```
/// use accelflow_trace::atm::Atm;
/// use accelflow_trace::ir::{Slot, Trace};
/// use accelflow_trace::kind::AccelKind;
///
/// let mut atm = Atm::new(64);
/// let t = Trace::new("resp", vec![Slot::Accel(AccelKind::Ser)]);
/// let addr = atm.store(t).unwrap();
/// assert_eq!(atm.load(addr).unwrap().name(), "resp");
/// ```
#[derive(Clone, Debug)]
pub struct Atm {
    entries: Vec<Option<Trace>>,
    reads: u64,
    writes: u64,
}

impl Atm {
    /// Creates an ATM with room for `capacity` traces.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds `u16::MAX + 1`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ATM capacity must be positive");
        assert!(
            capacity <= u16::MAX as usize + 1,
            "ATM capacity exceeds addressing"
        );
        Atm {
            entries: vec![None; capacity],
            reads: 0,
            writes: 0,
        }
    }

    /// Stores `trace` in the first free entry.
    ///
    /// # Errors
    ///
    /// Returns the trace back if the ATM is full.
    pub fn store(&mut self, trace: Trace) -> Result<AtmAddr, Trace> {
        match self.entries.iter().position(Option::is_none) {
            Some(i) => {
                self.entries[i] = Some(trace);
                self.writes += 1;
                Ok(AtmAddr(i as u16))
            }
            None => Err(trace),
        }
    }

    /// Stores `trace` at a specific address, replacing any previous
    /// occupant (returned).
    ///
    /// # Panics
    ///
    /// Panics if the address is beyond capacity.
    pub fn store_at(&mut self, addr: AtmAddr, trace: Trace) -> Option<Trace> {
        self.writes += 1;
        self.entries[addr.0 as usize].replace(trace)
    }

    /// Loads the trace at `addr`, counting the access.
    pub fn load(&mut self, addr: AtmAddr) -> Option<&Trace> {
        self.reads += 1;
        self.entries.get(addr.0 as usize).and_then(Option::as_ref)
    }

    /// Looks at the trace at `addr` without counting an access.
    pub fn peek(&self, addr: AtmAddr) -> Option<&Trace> {
        self.entries.get(addr.0 as usize).and_then(Option::as_ref)
    }

    /// Frees the entry at `addr`, returning its occupant.
    pub fn free(&mut self, addr: AtmAddr) -> Option<Trace> {
        self.entries.get_mut(addr.0 as usize).and_then(Option::take)
    }

    /// Number of occupied entries.
    pub fn occupied(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Total capacity in traces.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Lifetime reads (dispatcher trace fetches).
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Lifetime writes (core trace stores).
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Overwrites the lifetime access counters. Checkpoint-restore
    /// hook: the stored traces themselves are rebuilt from the trace
    /// library (they never change during a run), but the counters are
    /// run state and must resume from their saved values.
    pub fn restore_counters(&mut self, reads: u64, writes: u64) {
        self.reads = reads;
        self.writes = writes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Slot;
    use crate::kind::AccelKind;

    fn t(name: &str) -> Trace {
        Trace::new(name, vec![Slot::Accel(AccelKind::Tcp)])
    }

    #[test]
    fn store_load_free_cycle() {
        let mut atm = Atm::new(4);
        let a = atm.store(t("a")).unwrap();
        let b = atm.store(t("b")).unwrap();
        assert_ne!(a, b);
        assert_eq!(atm.occupied(), 2);
        assert_eq!(atm.load(a).unwrap().name(), "a");
        assert_eq!(atm.free(a).unwrap().name(), "a");
        assert_eq!(atm.occupied(), 1);
        assert!(atm.load(a).is_none());
        assert_eq!(atm.reads(), 2);
    }

    #[test]
    fn full_atm_rejects() {
        let mut atm = Atm::new(1);
        atm.store(t("a")).unwrap();
        let rejected = atm.store(t("b")).unwrap_err();
        assert_eq!(rejected.name(), "b");
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut atm = Atm::new(1);
        let a = atm.store(t("a")).unwrap();
        atm.free(a);
        let b = atm.store(t("b")).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn store_at_replaces() {
        let mut atm = Atm::new(8);
        assert!(atm.store_at(AtmAddr(5), t("x")).is_none());
        let old = atm.store_at(AtmAddr(5), t("y")).unwrap();
        assert_eq!(old.name(), "x");
        assert_eq!(atm.peek(AtmAddr(5)).unwrap().name(), "y");
        assert_eq!(atm.writes(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Atm::new(0);
    }
}
