//! The trace intermediate representation and its interpreter.
//!
//! A [`Trace`] is a short, branch-capable program over accelerator
//! invocations. Hardware walks it with a **Position Mark** (paper
//! §IV-A): when a PE finishes, the accelerator's output dispatcher
//! advances the mark, resolving branch conditions, applying data
//! transformations, forking results to the CPU, chaining to a follow-on
//! trace in the ATM, or handing the payload to the next accelerator.
//!
//! [`Trace::advance`] is that dispatcher walk as a *pure function*: it
//! reports every glue action taken (so the machine model can charge
//! instruction costs, paper §VII-B2) and where control goes next.

use crate::atm::AtmAddr;
use crate::cond::{BranchCond, PayloadFlags};
use crate::format::Transform;
use crate::kind::AccelKind;

/// Index of a slot within a trace: the paper's moving Position Mark.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PositionMark(pub u8);

/// One slot of a trace program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Slot {
    /// Invoke an accelerator; the payload moves to its input queue.
    Accel(AccelKind),
    /// Resolve a branch condition and jump to the corresponding slot.
    Branch {
        /// Condition evaluated on the payload flags.
        cond: BranchCond,
        /// Slot index when the condition holds.
        on_true: u8,
        /// Slot index when it does not.
        on_false: u8,
    },
    /// Unconditional jump (used to rejoin after a branch arm).
    Jump(u8),
    /// Transform the payload between data formats.
    Transform(Transform),
    /// Deliver a copy of the payload to the originating CPU core and
    /// keep executing (T6 writes the DB cache *in parallel* with
    /// notifying the CPU).
    ForkToCpu,
    /// Terminal: deliver the payload to the originating CPU core.
    ToCpu,
    /// Terminal: load the trace stored at this ATM address and continue
    /// with it (paper: "the tail of the trace has an address").
    NextTrace(AtmAddr),
}

/// A glue operation the output dispatcher performed while advancing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GlueAction {
    /// A branch was resolved.
    Branch {
        /// The condition that was evaluated.
        cond: BranchCond,
        /// Whether it held.
        taken: bool,
    },
    /// A data transformation was applied.
    Transform(Transform),
    /// A result copy was forked to the CPU.
    ForkToCpu,
}

/// Where control goes after advancing the Position Mark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Next {
    /// Hand the payload to this accelerator; resume from `pm` when it
    /// completes.
    Invoke {
        /// The accelerator to invoke.
        kind: AccelKind,
        /// The position mark of the invocation slot.
        pm: PositionMark,
    },
    /// Trace complete: DMA the result to memory and notify the
    /// originating core.
    ToCpu,
    /// Trace complete: chain to the trace at this ATM address.
    Chain(AtmAddr),
}

/// The result of one dispatcher walk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Advance {
    /// Glue actions performed, in order.
    pub actions: Vec<GlueAction>,
    /// Where control goes next.
    pub next: Next,
}

impl Advance {
    /// Whether any branch was resolved during this walk.
    pub fn resolved_branch(&self) -> bool {
        self.actions
            .iter()
            .any(|a| matches!(a, GlueAction::Branch { .. }))
    }
}

/// One step of a fully-resolved execution path (see
/// [`Trace::all_paths`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PathStep {
    /// An accelerator invocation.
    Accel(AccelKind),
    /// Delivery to the CPU (terminal or forked).
    Cpu,
    /// Chain to another trace.
    Chain(AtmAddr),
}

/// A trace: a named, validated program over accelerator invocations.
///
/// Construct traces with [`crate::builder::TraceBuilder`]; the paper's
/// T1–T12 library lives in [`crate::templates`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    name: String,
    slots: Vec<Slot>,
}

impl Trace {
    /// Creates a trace from raw slots.
    ///
    /// # Panics
    ///
    /// Panics if the program is invalid: more than 255 slots, a jump or
    /// branch target that is out of range or not strictly forward
    /// (forward-only control flow guarantees termination). Use
    /// [`Trace::try_new`] for untrusted input.
    pub fn new(name: impl Into<String>, slots: Vec<Slot>) -> Self {
        Self::try_new(name, slots).expect("invalid trace program")
    }

    /// Fallible constructor for untrusted slot programs (e.g. decoded
    /// from bytes off the wire).
    ///
    /// # Errors
    ///
    /// Returns the validation failure (see [`Trace::validate`]).
    pub fn try_new(name: impl Into<String>, slots: Vec<Slot>) -> Result<Self, String> {
        let trace = Trace {
            name: name.into(),
            slots,
        };
        trace.validate()?;
        Ok(trace)
    }

    /// Validates the program.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.slots.len() > u8::MAX as usize {
            return Err(format!("trace '{}' exceeds 255 slots", self.name));
        }
        let len = self.slots.len();
        for (i, slot) in self.slots.iter().enumerate() {
            let check = |target: u8, what: &str| -> Result<(), String> {
                if (target as usize) > len {
                    return Err(format!(
                        "trace '{}': {what} target {target} out of range at slot {i}",
                        self.name
                    ));
                }
                if (target as usize) <= i {
                    return Err(format!(
                        "trace '{}': {what} target {target} not forward at slot {i}",
                        self.name
                    ));
                }
                Ok(())
            };
            match slot {
                Slot::Branch {
                    on_true, on_false, ..
                } => {
                    check(*on_true, "branch")?;
                    check(*on_false, "branch")?;
                }
                Slot::Jump(t) => check(*t, "jump")?,
                _ => {}
            }
        }
        Ok(())
    }

    /// The trace's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The raw program.
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// Number of `Accel` slots (static count over both branch arms).
    pub fn accelerator_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Accel(_)))
            .count()
    }

    /// Number of branch slots.
    pub fn branch_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Branch { .. }))
            .count()
    }

    /// Finds the first accelerator to invoke (processing any leading
    /// glue slots with `flags`), as the CPU's `Enqueue` instruction
    /// does.
    pub fn first(&self, flags: &PayloadFlags) -> Advance {
        self.walk(0, flags)
    }

    /// Advances the Position Mark past a completed invocation at `pm`,
    /// resolving glue slots with `flags` — the output-dispatcher walk
    /// of paper Fig 8.
    ///
    /// # Panics
    ///
    /// Panics if `pm` does not point at an `Accel` slot.
    pub fn advance(&self, pm: PositionMark, flags: &PayloadFlags) -> Advance {
        assert!(
            matches!(self.slots.get(pm.0 as usize), Some(Slot::Accel(_))),
            "advance must start from an accelerator slot"
        );
        self.walk(pm.0 as usize + 1, flags)
    }

    fn walk(&self, mut idx: usize, flags: &PayloadFlags) -> Advance {
        let mut actions = Vec::new();
        loop {
            match self.slots.get(idx) {
                None => {
                    // Falling off the end notifies the CPU.
                    return Advance {
                        actions,
                        next: Next::ToCpu,
                    };
                }
                Some(Slot::Accel(kind)) => {
                    return Advance {
                        actions,
                        next: Next::Invoke {
                            kind: *kind,
                            pm: PositionMark(idx as u8),
                        },
                    };
                }
                Some(Slot::Branch {
                    cond,
                    on_true,
                    on_false,
                }) => {
                    let taken = cond.evaluate(flags);
                    actions.push(GlueAction::Branch { cond: *cond, taken });
                    idx = if taken { *on_true } else { *on_false } as usize;
                }
                Some(Slot::Jump(t)) => idx = *t as usize,
                Some(Slot::Transform(t)) => {
                    actions.push(GlueAction::Transform(*t));
                    idx += 1;
                }
                Some(Slot::ForkToCpu) => {
                    actions.push(GlueAction::ForkToCpu);
                    idx += 1;
                }
                Some(Slot::ToCpu) => {
                    return Advance {
                        actions,
                        next: Next::ToCpu,
                    };
                }
                Some(Slot::NextTrace(addr)) => {
                    return Advance {
                        actions,
                        next: Next::Chain(*addr),
                    };
                }
            }
        }
    }

    /// Enumerates every distinct fully-resolved execution path by
    /// exhaustively toggling the payload flags (the five named flags:
    /// 32 combinations). Used to derive the Table I connectivity matrix
    /// and to characterize traces.
    pub fn all_paths(&self) -> Vec<Vec<PathStep>> {
        let mut paths: Vec<Vec<PathStep>> = Vec::new();
        for bits in 0u8..32 {
            let flags = PayloadFlags {
                compressed: bits & 1 != 0,
                hit: bits & 2 != 0,
                found: bits & 4 != 0,
                exception: bits & 8 != 0,
                cache_compressed: bits & 16 != 0,
                custom_field: 0,
            };
            let path = self.resolve_path(&flags);
            if !paths.contains(&path) {
                paths.push(path);
            }
        }
        paths
    }

    /// The execution path under one specific flag assignment.
    pub fn resolve_path(&self, flags: &PayloadFlags) -> Vec<PathStep> {
        let mut path = Vec::new();
        let mut adv = self.first(flags);
        loop {
            for a in &adv.actions {
                if matches!(a, GlueAction::ForkToCpu) {
                    path.push(PathStep::Cpu);
                }
            }
            match adv.next {
                Next::Invoke { kind, pm } => {
                    path.push(PathStep::Accel(kind));
                    adv = self.advance(pm, flags);
                }
                Next::ToCpu => {
                    path.push(PathStep::Cpu);
                    return path;
                }
                Next::Chain(addr) => {
                    path.push(PathStep::Chain(addr));
                    return path;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::DataFormat;

    fn t1_like() -> Trace {
        // Tcp Decr Rpc Dser [Compressed? -> Transform, Dcmp] Ldb ToCpu
        Trace::new(
            "t1",
            vec![
                Slot::Accel(AccelKind::Tcp),
                Slot::Accel(AccelKind::Decr),
                Slot::Accel(AccelKind::Rpc),
                Slot::Accel(AccelKind::Dser),
                Slot::Branch {
                    cond: BranchCond::Compressed,
                    on_true: 5,
                    on_false: 7,
                },
                Slot::Transform(Transform {
                    src: DataFormat::Json,
                    dst: DataFormat::Str,
                }),
                Slot::Accel(AccelKind::Dcmp),
                Slot::Accel(AccelKind::Ldb),
                Slot::ToCpu,
            ],
        )
    }

    #[test]
    fn sequence_walk_without_branch() {
        let t = t1_like();
        let flags = PayloadFlags::default();
        let first = t.first(&flags);
        assert_eq!(
            first.next,
            Next::Invoke {
                kind: AccelKind::Tcp,
                pm: PositionMark(0)
            }
        );
        assert!(first.actions.is_empty());

        // After Dser with an uncompressed payload: branch skips Dcmp.
        let adv = t.advance(PositionMark(3), &flags);
        assert_eq!(
            adv.next,
            Next::Invoke {
                kind: AccelKind::Ldb,
                pm: PositionMark(7)
            }
        );
        assert_eq!(adv.actions.len(), 1);
        assert!(adv.resolved_branch());
    }

    #[test]
    fn branch_taken_inserts_transform_and_dcmp() {
        let t = t1_like();
        let flags = PayloadFlags {
            compressed: true,
            ..Default::default()
        };
        let adv = t.advance(PositionMark(3), &flags);
        assert_eq!(
            adv.next,
            Next::Invoke {
                kind: AccelKind::Dcmp,
                pm: PositionMark(6)
            }
        );
        // Branch resolution + transform.
        assert_eq!(adv.actions.len(), 2);
        assert!(matches!(adv.actions[1], GlueAction::Transform(_)));
    }

    #[test]
    fn terminal_to_cpu() {
        let t = t1_like();
        let adv = t.advance(PositionMark(7), &PayloadFlags::default());
        assert_eq!(adv.next, Next::ToCpu);
    }

    #[test]
    fn chain_terminal() {
        let t = Trace::new(
            "t4",
            vec![
                Slot::Accel(AccelKind::Ser),
                Slot::Accel(AccelKind::Encr),
                Slot::Accel(AccelKind::Tcp),
                Slot::NextTrace(AtmAddr(42)),
            ],
        );
        let adv = t.advance(PositionMark(2), &PayloadFlags::default());
        assert_eq!(adv.next, Next::Chain(AtmAddr(42)));
    }

    #[test]
    fn implicit_to_cpu_at_end() {
        let t = Trace::new("short", vec![Slot::Accel(AccelKind::Ldb)]);
        let adv = t.advance(PositionMark(0), &PayloadFlags::default());
        assert_eq!(adv.next, Next::ToCpu);
    }

    #[test]
    fn fork_to_cpu_is_reported_and_continues() {
        let t = Trace::new(
            "fork",
            vec![
                Slot::Accel(AccelKind::Dser),
                Slot::ForkToCpu,
                Slot::Accel(AccelKind::Ser),
            ],
        );
        let adv = t.advance(PositionMark(0), &PayloadFlags::default());
        assert_eq!(adv.actions, vec![GlueAction::ForkToCpu]);
        assert!(matches!(
            adv.next,
            Next::Invoke {
                kind: AccelKind::Ser,
                ..
            }
        ));
    }

    #[test]
    fn all_paths_of_t1() {
        let t = t1_like();
        let paths = t.all_paths();
        assert_eq!(paths.len(), 2);
        let lens: Vec<usize> = paths.iter().map(|p| p.len()).collect();
        // Uncompressed: 5 accels + Cpu = 6; compressed: 6 accels + Cpu = 7.
        assert!(lens.contains(&6) && lens.contains(&7), "{lens:?}");
    }

    #[test]
    fn counts() {
        let t = t1_like();
        assert_eq!(t.accelerator_count(), 6);
        assert_eq!(t.branch_count(), 1);
        assert_eq!(t.name(), "t1");
    }

    #[test]
    #[should_panic(expected = "not forward")]
    fn backward_jump_rejected() {
        let _ = Trace::new("loop", vec![Slot::Accel(AccelKind::Tcp), Slot::Jump(0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_branch_rejected() {
        let _ = Trace::new(
            "oob",
            vec![Slot::Branch {
                cond: BranchCond::Hit,
                on_true: 9,
                on_false: 1,
            }],
        );
    }

    #[test]
    #[should_panic(expected = "accelerator slot")]
    fn advance_from_glue_slot_rejected() {
        let t = t1_like();
        let _ = t.advance(PositionMark(4), &PayloadFlags::default());
    }
}
