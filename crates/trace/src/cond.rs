//! Branch conditions and the payload flags they test (paper §III Q2,
//! §IV-A, §VII-B2).
//!
//! The paper finds that 54–83% of accelerator sequences contain at
//! least one conditional, and that the conditions are simple: "checking
//! a few bits in the payload, and performing simple comparisons". The
//! four conditions the services exercise are `Compressed?`, `Hit?`,
//! `Found?`, and `Exception?` (§VII-B2), plus the `C-Compressed?` test
//! of trace T6 (does the DB cache store compressed entries). A generic
//! field test covers new applications.

use std::fmt;

/// The payload-dependent facts a branch condition can test.
///
/// In hardware these are bits in the message payload; in the simulation
/// the workload model decides them per request and the output
/// dispatcher reads them when resolving a branch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct PayloadFlags {
    /// The payload (or response body) is compressed.
    pub compressed: bool,
    /// The read hit in the database cache.
    pub hit: bool,
    /// The record was found in the database.
    pub found: bool,
    /// The response carries an exception.
    pub exception: bool,
    /// The database cache stores compressed entries.
    pub cache_compressed: bool,
    /// Raw payload byte available to [`BranchCond::Custom`] tests.
    pub custom_field: u8,
}

/// A branch condition embedded in a trace.
///
/// # Example
///
/// ```
/// use accelflow_trace::cond::{BranchCond, PayloadFlags};
///
/// let flags = PayloadFlags { compressed: true, ..PayloadFlags::default() };
/// assert!(BranchCond::Compressed.evaluate(&flags));
/// assert!(!BranchCond::Hit.evaluate(&flags));
///
/// // "if (field & 0b0011) ..." — the generic form from Listing 1.
/// let custom = BranchCond::Custom { mask: 0b0011, expect: 0b0001 };
/// let flags = PayloadFlags { custom_field: 0b0101, ..PayloadFlags::default() };
/// assert!(custom.evaluate(&flags));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Is the payload compressed? (T1, T5, T6, T9–T12.)
    Compressed,
    /// Did the read hit in the DB cache? (T5.)
    Hit,
    /// Was the record found in the DB? (T6.)
    Found,
    /// Does the response carry an exception? (T7, T10.)
    Exception,
    /// Does the DB cache store compressed data? (T6's C-Compressed.)
    CacheCompressed,
    /// Generic masked-compare on a payload field.
    Custom {
        /// Bit mask applied to the payload field.
        mask: u8,
        /// Expected value of the masked field.
        expect: u8,
    },
}

impl BranchCond {
    /// Evaluates the condition against a payload's flags.
    pub fn evaluate(self, flags: &PayloadFlags) -> bool {
        match self {
            BranchCond::Compressed => flags.compressed,
            BranchCond::Hit => flags.hit,
            BranchCond::Found => flags.found,
            BranchCond::Exception => flags.exception,
            BranchCond::CacheCompressed => flags.cache_compressed,
            BranchCond::Custom { mask, expect } => flags.custom_field & mask == expect,
        }
    }

    /// Extra RISC-like glue instructions the output dispatcher executes
    /// to resolve this branch (paper §VII-B2: "processing a branch adds
    /// the equivalent of 7 additional RISC instructions" on average).
    pub fn resolve_instructions(self) -> u32 {
        match self {
            // The named flags are single-bit tests: load + mask + branch.
            BranchCond::Compressed
            | BranchCond::Hit
            | BranchCond::Found
            | BranchCond::Exception
            | BranchCond::CacheCompressed => 7,
            // Custom tests do load + mask + compare + branch.
            BranchCond::Custom { .. } => 9,
        }
    }

    /// 4-bit condition code for the packed encoding.
    pub(crate) fn code(self) -> u8 {
        match self {
            BranchCond::Compressed => 0,
            BranchCond::Hit => 1,
            BranchCond::Found => 2,
            BranchCond::Exception => 3,
            BranchCond::CacheCompressed => 4,
            BranchCond::Custom { .. } => 5,
        }
    }

    pub(crate) fn from_code(code: u8, mask: u8, expect: u8) -> Option<BranchCond> {
        Some(match code {
            0 => BranchCond::Compressed,
            1 => BranchCond::Hit,
            2 => BranchCond::Found,
            3 => BranchCond::Exception,
            4 => BranchCond::CacheCompressed,
            5 => BranchCond::Custom { mask, expect },
            _ => return None,
        })
    }
}

impl fmt::Display for BranchCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BranchCond::Compressed => write!(f, "Compressed?"),
            BranchCond::Hit => write!(f, "Hit?"),
            BranchCond::Found => write!(f, "Found?"),
            BranchCond::Exception => write!(f, "Exception?"),
            BranchCond::CacheCompressed => write!(f, "C-Compressed?"),
            BranchCond::Custom { mask, expect } => {
                write!(f, "(field & {mask:#04x}) == {expect:#04x}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_conditions_read_their_flag() {
        let mut flags = PayloadFlags::default();
        assert!(!BranchCond::Compressed.evaluate(&flags));
        flags.compressed = true;
        assert!(BranchCond::Compressed.evaluate(&flags));
        flags.hit = true;
        flags.found = true;
        flags.exception = true;
        flags.cache_compressed = true;
        for cond in [
            BranchCond::Hit,
            BranchCond::Found,
            BranchCond::Exception,
            BranchCond::CacheCompressed,
        ] {
            assert!(cond.evaluate(&flags), "{cond}");
        }
    }

    #[test]
    fn custom_condition_masks_and_compares() {
        let cond = BranchCond::Custom {
            mask: 0xF0,
            expect: 0xA0,
        };
        let mut flags = PayloadFlags {
            custom_field: 0xA7,
            ..Default::default()
        };
        assert!(cond.evaluate(&flags));
        flags.custom_field = 0xB7;
        assert!(!cond.evaluate(&flags));
    }

    #[test]
    fn resolution_cost_matches_paper() {
        // Paper §VII-B2: a branch adds ~7 RISC instructions.
        assert_eq!(BranchCond::Compressed.resolve_instructions(), 7);
        assert_eq!(
            BranchCond::Custom { mask: 1, expect: 1 }.resolve_instructions(),
            9
        );
    }

    #[test]
    fn codes_roundtrip() {
        for cond in [
            BranchCond::Compressed,
            BranchCond::Hit,
            BranchCond::Found,
            BranchCond::Exception,
            BranchCond::CacheCompressed,
            BranchCond::Custom { mask: 3, expect: 1 },
        ] {
            let (mask, expect) = match cond {
                BranchCond::Custom { mask, expect } => (mask, expect),
                _ => (0, 0),
            };
            assert_eq!(BranchCond::from_code(cond.code(), mask, expect), Some(cond));
        }
        assert_eq!(BranchCond::from_code(15, 0, 0), None);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(BranchCond::Hit.to_string(), "Hit?");
        assert!(BranchCond::Custom { mask: 3, expect: 1 }
            .to_string()
            .contains("field"));
    }
}
