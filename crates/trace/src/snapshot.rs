//! Checkpoint serialization for trace-IR types.
//!
//! [`Snapshot`] impls for everything of this crate that appears in a
//! machine checkpoint: sampled request programs embed [`Trace`]s (via
//! `Arc`, serialized by content — traces are immutable once built, so a
//! restored copy in a fresh `Arc` is behaviorally identical), and queue
//! entries carry [`PositionMark`]s, [`AtmAddr`]s, and [`PayloadFlags`].
//! Enums use stable one-byte tags independent of `as`-cast
//! discriminants; unknown tags are rejected as corrupt rather than
//! wrapped. See `docs/CHECKPOINT.md` for the wire format.

use accelflow_sim::snapshot::{SnapReader, SnapWriter, Snapshot, SnapshotError};

use crate::atm::AtmAddr;
use crate::cond::{BranchCond, PayloadFlags};
use crate::format::{DataFormat, Transform};
use crate::ir::{PositionMark, Slot, Trace};
use crate::kind::AccelKind;

impl Snapshot for AccelKind {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(self.id());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let id = r.u8()?;
        AccelKind::from_id(id)
            .ok_or_else(|| SnapshotError::Corrupt(format!("unknown AccelKind id {id}")))
    }
}

impl Snapshot for DataFormat {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(self.code());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let code = r.u8()?;
        DataFormat::from_code(code)
            .ok_or_else(|| SnapshotError::Corrupt(format!("unknown DataFormat code {code}")))
    }
}

impl Snapshot for Transform {
    fn save(&self, w: &mut SnapWriter) {
        self.src.save(w);
        self.dst.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Transform {
            src: DataFormat::load(r)?,
            dst: DataFormat::load(r)?,
        })
    }
}

impl Snapshot for BranchCond {
    fn save(&self, w: &mut SnapWriter) {
        let (mask, expect) = match self {
            BranchCond::Custom { mask, expect } => (*mask, *expect),
            _ => (0, 0),
        };
        w.u8(self.code());
        w.u8(mask);
        w.u8(expect);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let code = r.u8()?;
        let mask = r.u8()?;
        let expect = r.u8()?;
        BranchCond::from_code(code, mask, expect)
            .ok_or_else(|| SnapshotError::Corrupt(format!("unknown BranchCond code {code}")))
    }
}

impl Snapshot for AtmAddr {
    fn save(&self, w: &mut SnapWriter) {
        w.u16(self.0);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(AtmAddr(r.u16()?))
    }
}

impl Snapshot for PositionMark {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(self.0);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(PositionMark(r.u8()?))
    }
}

impl Snapshot for PayloadFlags {
    fn save(&self, w: &mut SnapWriter) {
        w.bool(self.compressed);
        w.bool(self.hit);
        w.bool(self.found);
        w.bool(self.exception);
        w.bool(self.cache_compressed);
        w.u8(self.custom_field);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(PayloadFlags {
            compressed: r.bool()?,
            hit: r.bool()?,
            found: r.bool()?,
            exception: r.bool()?,
            cache_compressed: r.bool()?,
            custom_field: r.u8()?,
        })
    }
}

impl Snapshot for Slot {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            Slot::Accel(kind) => {
                w.u8(0);
                kind.save(w);
            }
            Slot::Branch {
                cond,
                on_true,
                on_false,
            } => {
                w.u8(1);
                cond.save(w);
                w.u8(*on_true);
                w.u8(*on_false);
            }
            Slot::Jump(target) => {
                w.u8(2);
                w.u8(*target);
            }
            Slot::Transform(t) => {
                w.u8(3);
                t.save(w);
            }
            Slot::ForkToCpu => w.u8(4),
            Slot::ToCpu => w.u8(5),
            Slot::NextTrace(addr) => {
                w.u8(6);
                addr.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => Slot::Accel(AccelKind::load(r)?),
            1 => Slot::Branch {
                cond: BranchCond::load(r)?,
                on_true: r.u8()?,
                on_false: r.u8()?,
            },
            2 => Slot::Jump(r.u8()?),
            3 => Slot::Transform(Transform::load(r)?),
            4 => Slot::ForkToCpu,
            5 => Slot::ToCpu,
            6 => Slot::NextTrace(AtmAddr::load(r)?),
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "unknown trace Slot tag {other}"
                )))
            }
        })
    }
}

impl Snapshot for Trace {
    /// Serializes by content (name + slot program); [`Trace::load`]
    /// revalidates the program, so corrupt control flow (backward
    /// jumps, out-of-range targets) is rejected instead of trusted.
    fn save(&self, w: &mut SnapWriter) {
        w.str(self.name());
        w.usize(self.slots().len());
        for slot in self.slots() {
            slot.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let name = r.str()?;
        let slots = Vec::<Slot>::load(r)?;
        Trace::try_new(name, slots).map_err(SnapshotError::Corrupt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::TraceLibrary;

    fn roundtrip<T: Snapshot>(value: &T) -> T {
        let mut w = SnapWriter::new();
        value.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let out = T::load(&mut r).expect("roundtrip failed");
        assert!(r.is_exhausted(), "trailing bytes after roundtrip");
        out
    }

    #[test]
    fn every_library_trace_roundtrips() {
        let lib = TraceLibrary::standard();
        for template in crate::templates::TemplateId::ALL {
            let trace = lib.entry(template);
            assert_eq!(&roundtrip(trace), trace, "{template}");
        }
    }

    #[test]
    fn slot_tags_roundtrip() {
        for slot in [
            Slot::Accel(AccelKind::Ldb),
            Slot::Branch {
                cond: BranchCond::Custom {
                    mask: 0xF0,
                    expect: 0x30,
                },
                on_true: 2,
                on_false: 3,
            },
            Slot::Jump(7),
            Slot::Transform(Transform {
                src: DataFormat::Json,
                dst: DataFormat::Protobuf,
            }),
            Slot::ForkToCpu,
            Slot::ToCpu,
            Slot::NextTrace(AtmAddr(513)),
        ] {
            assert_eq!(roundtrip(&slot), slot);
        }
    }

    #[test]
    fn corrupt_trace_program_rejected() {
        // A hand-built byte stream encoding a backward jump must fail
        // revalidation on load.
        let mut w = SnapWriter::new();
        w.str("evil");
        w.usize(2);
        Slot::Accel(AccelKind::Tcp).save(&mut w);
        Slot::Jump(0).save(&mut w); // backward: invalid
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            Trace::load(&mut r),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn payload_flags_roundtrip() {
        let flags = PayloadFlags {
            compressed: true,
            hit: false,
            found: true,
            exception: false,
            cache_compressed: true,
            custom_field: 0xA5,
        };
        assert_eq!(roundtrip(&flags), flags);
    }
}
