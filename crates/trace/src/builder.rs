//! The trace-construction API (paper §V-4, Listing 1).
//!
//! The paper's programming model exposes three constructors — `seq`
//! (linear accelerator chain), `branch` (conditional control flow on
//! the previous accelerator's output), and `trans` (data-format change)
//! — from which developers build traces. [`TraceBuilder`] is that API
//! as a consuming Rust builder; it flattens nested branch arms into the
//! forward-only slot program of [`Trace`].

use crate::atm::AtmAddr;
use crate::cond::BranchCond;
use crate::format::{DataFormat, Transform};
use crate::ir::{Slot, Trace};
use crate::kind::AccelKind;

/// Builds a [`Trace`] from `seq`/`branch`/`trans` combinators.
///
/// See the crate-level example for the paper's Listing 1 (trace T1).
#[derive(Debug)]
pub struct TraceBuilder {
    name: String,
    slots: Vec<Slot>,
}

impl TraceBuilder {
    /// Starts a new trace with the given registered name.
    pub fn new(name: impl Into<String>) -> Self {
        TraceBuilder {
            name: name.into(),
            slots: Vec::new(),
        }
    }

    /// Appends a linear chain of accelerator invocations — the paper's
    /// `seq(*accels)`.
    pub fn seq(mut self, accels: impl IntoIterator<Item = AccelKind>) -> Self {
        for kind in accels {
            self.slots.push(Slot::Accel(kind));
        }
        self
    }

    /// Appends one accelerator invocation.
    pub fn invoke(self, kind: AccelKind) -> Self {
        self.seq([kind])
    }

    /// Appends a conditional — the paper's `branch(condition-op,
    /// on-true, on-false)`. Each arm is built by its closure on an
    /// empty sub-builder; arms that fall through rejoin the main
    /// sequence after the branch.
    pub fn branch(
        mut self,
        cond: BranchCond,
        on_true: impl FnOnce(TraceBuilder) -> TraceBuilder,
        on_false: impl FnOnce(TraceBuilder) -> TraceBuilder,
    ) -> Self {
        let true_arm = on_true(TraceBuilder::new("")).slots;
        let false_arm = on_false(TraceBuilder::new("")).slots;

        let branch_idx = self.slots.len();
        let true_start = branch_idx + 1;
        // A jump over the false arm is needed only when the false arm
        // has slots for the true arm to fall through into.
        let needs_jump = !false_arm.is_empty();
        let jump_len = usize::from(needs_jump);
        let false_start = true_start + true_arm.len() + jump_len;
        let join = false_start + false_arm.len();

        self.slots.push(Slot::Branch {
            cond,
            on_true: true_start as u8,
            on_false: false_start as u8,
        });
        self.splice(true_arm, true_start);
        if needs_jump {
            self.slots.push(Slot::Jump(join as u8));
        }
        self.splice(false_arm, false_start);
        self
    }

    /// Appends a data-format transformation — the paper's
    /// `trans(src, dst)`.
    pub fn trans(mut self, src: DataFormat, dst: DataFormat) -> Self {
        self.slots.push(Slot::Transform(Transform { src, dst }));
        self
    }

    /// Appends a terminal "deliver result to the originating CPU core".
    pub fn to_cpu(mut self) -> Self {
        self.slots.push(Slot::ToCpu);
        self
    }

    /// Appends a "deliver a copy to the CPU and continue" (T6's
    /// parallel notify + cache write).
    pub fn fork_to_cpu(mut self) -> Self {
        self.slots.push(Slot::ForkToCpu);
        self
    }

    /// Appends a terminal chain to the trace stored at `addr` in the
    /// ATM.
    pub fn next_trace(mut self, addr: AtmAddr) -> Self {
        self.slots.push(Slot::NextTrace(addr));
        self
    }

    /// Finalizes and validates the trace.
    ///
    /// # Panics
    ///
    /// Panics if the assembled program is invalid (see [`Trace::new`]).
    pub fn build(self) -> Trace {
        Trace::new(self.name, self.slots)
    }

    /// Splices sub-builder slots in at `base`, offsetting their
    /// internal targets.
    fn splice(&mut self, arm: Vec<Slot>, base: usize) {
        debug_assert_eq!(self.slots.len(), base);
        for slot in arm {
            self.slots.push(match slot {
                Slot::Branch {
                    cond,
                    on_true,
                    on_false,
                } => Slot::Branch {
                    cond,
                    on_true: on_true + base as u8,
                    on_false: on_false + base as u8,
                },
                Slot::Jump(t) => Slot::Jump(t + base as u8),
                other => other,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::PayloadFlags;
    use crate::ir::{Next, PathStep, PositionMark};
    use AccelKind::*;

    #[test]
    fn seq_builds_linear_chain() {
        let t = TraceBuilder::new("t2")
            .seq([Ser, Rpc, Encr, Tcp])
            .to_cpu()
            .build();
        assert_eq!(t.accelerator_count(), 4);
        assert_eq!(t.branch_count(), 0);
        let path = t.resolve_path(&PayloadFlags::default());
        assert_eq!(
            path,
            vec![
                PathStep::Accel(Ser),
                PathStep::Accel(Rpc),
                PathStep::Accel(Encr),
                PathStep::Accel(Tcp),
                PathStep::Cpu
            ]
        );
    }

    #[test]
    fn branch_arms_rejoin() {
        // T1 shape: branch inserts Dcmp only when compressed.
        let t = TraceBuilder::new("t1")
            .seq([Tcp, Decr, Rpc, Dser])
            .branch(
                BranchCond::Compressed,
                |b| b.trans(DataFormat::Json, DataFormat::Str).seq([Dcmp]),
                |b| b,
            )
            .seq([Ldb])
            .to_cpu()
            .build();
        let plain = t.resolve_path(&PayloadFlags::default());
        let compressed = t.resolve_path(&PayloadFlags {
            compressed: true,
            ..Default::default()
        });
        assert_eq!(plain.len() + 1, compressed.len());
        assert!(compressed.contains(&PathStep::Accel(Dcmp)));
        assert!(!plain.contains(&PathStep::Accel(Dcmp)));
        // Both paths end LdB → CPU.
        assert_eq!(plain.last(), Some(&PathStep::Cpu));
        assert_eq!(plain[plain.len() - 2], PathStep::Accel(Ldb));
        assert_eq!(compressed[compressed.len() - 2], PathStep::Accel(Ldb));
    }

    #[test]
    fn divergent_arms_with_terminals() {
        // T5 shape: hit → LdB, CPU; miss → Ser, Encr, Tcp, chain.
        let t = TraceBuilder::new("t5")
            .seq([Tcp, Decr, Dser])
            .branch(
                BranchCond::Hit,
                |b| b.seq([Ldb]).to_cpu(),
                |b| b.seq([Ser, Encr, Tcp]).next_trace(AtmAddr(6)),
            )
            .build();
        let hit = t.resolve_path(&PayloadFlags {
            hit: true,
            ..Default::default()
        });
        let miss = t.resolve_path(&PayloadFlags::default());
        assert_eq!(hit.last(), Some(&PathStep::Cpu));
        assert_eq!(miss.last(), Some(&PathStep::Chain(AtmAddr(6))));
        assert!(miss.contains(&PathStep::Accel(Ser)));
        assert!(hit.contains(&PathStep::Accel(Ldb)));
    }

    #[test]
    fn nested_branches() {
        let t = TraceBuilder::new("t6ish")
            .seq([Tcp, Dser])
            .branch(
                BranchCond::Found,
                |b| {
                    b.branch(BranchCond::Compressed, |b| b.seq([Dcmp]), |b| b)
                        .fork_to_cpu()
                        .seq([Ser, Tcp])
                },
                |b| b.seq([Ser, Encr, Tcp]).to_cpu(),
            )
            .build();
        let found_cmp = t.resolve_path(&PayloadFlags {
            found: true,
            compressed: true,
            ..Default::default()
        });
        assert!(found_cmp.contains(&PathStep::Accel(Dcmp)));
        // Fork delivered the CPU copy mid-path.
        let cpu_positions: Vec<usize> = found_cmp
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == PathStep::Cpu)
            .map(|(i, _)| i)
            .collect();
        assert!(!cpu_positions.is_empty());
        assert!(
            cpu_positions[0] < found_cmp.len() - 1,
            "fork happens mid-trace"
        );

        let not_found = t.resolve_path(&PayloadFlags::default());
        assert!(not_found.contains(&PathStep::Accel(Encr)));
        assert_eq!(not_found.last(), Some(&PathStep::Cpu));
    }

    #[test]
    fn empty_false_arm_generates_no_jump() {
        let t = TraceBuilder::new("x")
            .invoke(Dser)
            .branch(BranchCond::Compressed, |b| b.invoke(Dcmp), |b| b)
            .invoke(Ldb)
            .build();
        assert!(!t.slots().iter().any(|s| matches!(s, Slot::Jump(_))));
        // Taken path goes Dser → Dcmp → Ldb.
        let adv = t.advance(
            PositionMark(0),
            &PayloadFlags {
                compressed: true,
                ..Default::default()
            },
        );
        assert!(matches!(adv.next, Next::Invoke { kind: Dcmp, .. }));
    }

    #[test]
    fn builder_matches_listing_one() {
        // Listing 1 constructs Fig 4a's trace; validate its structure.
        let t = TraceBuilder::new("func_req")
            .seq([Tcp, Decr, Rpc, Dser])
            .branch(
                BranchCond::Compressed,
                |b| b.trans(DataFormat::Json, DataFormat::Str).seq([Dcmp]),
                |b| b,
            )
            .seq([Ldb])
            .to_cpu()
            .build();
        assert_eq!(t.name(), "func_req");
        assert_eq!(t.accelerator_count(), 6);
        assert_eq!(t.branch_count(), 1);
        assert_eq!(t.all_paths().len(), 2);
    }
}
