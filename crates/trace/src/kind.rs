//! The nine accelerator kinds of the ensemble (paper §III).
//!
//! The ensemble accelerates every major source of datacenter tax: TCP
//! processing (F4T), de/encryption (QTLS), RPC framing (Cerebros),
//! de/serialization (ProtoAcc), de/compression (CDPU), and load
//! balancing (Intel DLB).

use std::fmt;

/// One of the nine accelerator types integrated on-package.
///
/// The discriminant doubles as the 4-bit accelerator ID used in the
/// packed trace encoding (paper §IV-A: "since there are nine
/// accelerator types, we use 4 bits per accelerator in the trace").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum AccelKind {
    /// TCP stack processing (reassembly, congestion control, checksums).
    Tcp = 0,
    /// Encryption (SSL/TLS send side).
    Encr = 1,
    /// Decryption (SSL/TLS receive side).
    Decr = 2,
    /// RPC framing: decode function name, fetch handler/descriptor.
    Rpc = 3,
    /// Serialization (application format → wire format).
    Ser = 4,
    /// Deserialization (wire format → application format).
    Dser = 5,
    /// Compression.
    Cmp = 6,
    /// Decompression.
    Dcmp = 7,
    /// Load balancing: picks a core to run the request (no payload
    /// processing).
    Ldb = 8,
}

impl AccelKind {
    /// All kinds, in ID order.
    pub const ALL: [AccelKind; 9] = [
        AccelKind::Tcp,
        AccelKind::Encr,
        AccelKind::Decr,
        AccelKind::Rpc,
        AccelKind::Ser,
        AccelKind::Dser,
        AccelKind::Cmp,
        AccelKind::Dcmp,
        AccelKind::Ldb,
    ];

    /// Number of accelerator kinds.
    pub const COUNT: usize = 9;

    /// The 4-bit accelerator ID.
    pub const fn id(self) -> u8 {
        self as u8
    }

    /// Inverse of [`AccelKind::id`].
    pub fn from_id(id: u8) -> Option<AccelKind> {
        AccelKind::ALL.get(id as usize).copied()
    }

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            AccelKind::Tcp => "TCP",
            AccelKind::Encr => "Encr",
            AccelKind::Decr => "Decr",
            AccelKind::Rpc => "RPC",
            AccelKind::Ser => "Ser",
            AccelKind::Dser => "Dser",
            AccelKind::Cmp => "Cmp",
            AccelKind::Dcmp => "Dcmp",
            AccelKind::Ldb => "LdB",
        }
    }

    /// Whether this accelerator processes payload data. The load
    /// balancer only picks a core (paper Fig 5 has no LdB bar).
    pub fn processes_data(self) -> bool {
        !matches!(self, AccelKind::Ldb)
    }
}

impl fmt::Display for AccelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        for kind in AccelKind::ALL {
            assert_eq!(AccelKind::from_id(kind.id()), Some(kind));
        }
        assert_eq!(AccelKind::from_id(9), None);
        assert_eq!(AccelKind::from_id(255), None);
    }

    #[test]
    fn ids_fit_four_bits() {
        for kind in AccelKind::ALL {
            assert!(kind.id() < 16);
        }
        assert_eq!(AccelKind::ALL.len(), AccelKind::COUNT);
    }

    #[test]
    fn only_ldb_skips_data() {
        assert!(!AccelKind::Ldb.processes_data());
        for kind in AccelKind::ALL {
            if kind != AccelKind::Ldb {
                assert!(kind.processes_data(), "{kind}");
            }
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(AccelKind::Tcp.to_string(), "TCP");
        assert_eq!(AccelKind::Ldb.to_string(), "LdB");
        assert_eq!(AccelKind::Dser.to_string(), "Dser");
    }
}
