//! The paper's complete trace library (Table II, Figures 2, 4, and 7).
//!
//! The services use twelve trace shapes, T1–T12. Traces that run in
//! response to a *message arrival* (T5, T6, T7, T10, T12 — responses to
//! requests this machine sent) are pre-stored in the ATM and referenced
//! from the tails of the request traces that elicit them (paper §IV-B:
//! the TCP output dispatcher loads the stored trace into its own input
//! queue after sending the request). The rarely-exercised
//! error-reporting subsequence of T6/T7/T10 is split into a trace of
//! its own, exactly as §IV-B prescribes.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::atm::{Atm, AtmAddr};
use crate::builder::TraceBuilder;
use crate::cond::BranchCond;
use crate::format::DataFormat;
use crate::ir::{PathStep, Trace};
use crate::kind::AccelKind;

/// Identifies one of the paper's twelve trace templates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TemplateId {
    /// Receive function request (with or without Dcmp). Fig 4a.
    T1,
    /// Send function response without Cmp. Fig 2a.
    T2,
    /// Send function response with Cmp.
    T3,
    /// Send read request to DB cache. Fig 2b.
    T4,
    /// Receive response to a read to the DB cache (± Dcmp). Fig 7.
    T5,
    /// Receive response to a read to the DB (± Dcmp or Cmp). Fig 7.
    T6,
    /// Receive response to a write to the DB cache or DB. Fig 7.
    T7,
    /// Send write request to DB cache or DB (± Cmp).
    T8,
    /// Send RPC request (± Cmp).
    T9,
    /// Receive RPC response.
    T10,
    /// Send HTTP request (± Cmp).
    T11,
    /// Receive HTTP response.
    T12,
}

impl TemplateId {
    /// All templates in order.
    pub const ALL: [TemplateId; 12] = [
        TemplateId::T1,
        TemplateId::T2,
        TemplateId::T3,
        TemplateId::T4,
        TemplateId::T5,
        TemplateId::T6,
        TemplateId::T7,
        TemplateId::T8,
        TemplateId::T9,
        TemplateId::T10,
        TemplateId::T11,
        TemplateId::T12,
    ];

    /// The paper's name (T1–T12).
    pub fn name(self) -> &'static str {
        match self {
            TemplateId::T1 => "T1",
            TemplateId::T2 => "T2",
            TemplateId::T3 => "T3",
            TemplateId::T4 => "T4",
            TemplateId::T5 => "T5",
            TemplateId::T6 => "T6",
            TemplateId::T7 => "T7",
            TemplateId::T8 => "T8",
            TemplateId::T9 => "T9",
            TemplateId::T10 => "T10",
            TemplateId::T11 => "T11",
            TemplateId::T12 => "T12",
        }
    }

    /// Table II's explanation column.
    pub fn description(self) -> &'static str {
        match self {
            TemplateId::T1 => "Receive function request (with or without Dcmp)",
            TemplateId::T2 => "Send function response without Cmp",
            TemplateId::T3 => "Send function response with Cmp",
            TemplateId::T4 => "Send read request to DB cache",
            TemplateId::T5 => "Receive response to a read to the DB cache (with or without Dcmp)",
            TemplateId::T6 => "Receive response to a read to the DB (with or without Dcmp or Cmp)",
            TemplateId::T7 => "Receive response to a write to the DB cache or DB",
            TemplateId::T8 => "Send write request to DB cache or to DB (with or without Cmp)",
            TemplateId::T9 => "Send RPC request (with or without Cmp)",
            TemplateId::T10 => "Receive RPC response",
            TemplateId::T11 => "Send HTTP request (with or without Cmp)",
            TemplateId::T12 => "Receive HTTP response",
        }
    }

    /// Whether this trace is triggered by a message arrival (and hence
    /// lives in the ATM, pre-loaded by the request trace that elicits
    /// the message) rather than initiated by a CPU core.
    pub fn message_triggered(self) -> bool {
        matches!(
            self,
            TemplateId::T1
                | TemplateId::T5
                | TemplateId::T6
                | TemplateId::T7
                | TemplateId::T10
                | TemplateId::T12
        )
    }
}

impl fmt::Display for TemplateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An endpoint in the Table I connectivity matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Neighbor {
    /// Another accelerator.
    Accel(AccelKind),
    /// A CPU core.
    Cpu,
    /// The network (for TCP's external side and trace chains that wait
    /// for a response message).
    Network,
}

impl fmt::Display for Neighbor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Neighbor::Accel(k) => write!(f, "{k}"),
            Neighbor::Cpu => write!(f, "CPU"),
            Neighbor::Network => write!(f, "Net"),
        }
    }
}

/// Per-accelerator sources and destinations, the reproduction's
/// equivalent of paper Table I.
pub type ConnectivityMatrix = BTreeMap<AccelKind, (BTreeSet<Neighbor>, BTreeSet<Neighbor>)>;

/// The assembled trace library: entry traces plus the ATM pre-populated
/// with message-triggered continuations.
///
/// # Example
///
/// ```
/// use accelflow_trace::templates::{TemplateId, TraceLibrary};
///
/// let lib = TraceLibrary::standard();
/// let t1 = lib.entry(TemplateId::T1);
/// assert_eq!(t1.branch_count(), 1); // the Dcmp-or-not branch of Fig 4a
/// assert!(lib.addr(TemplateId::T5).is_some()); // T5 waits in the ATM
/// ```
#[derive(Clone, Debug)]
pub struct TraceLibrary {
    atm: Atm,
    entries: BTreeMap<TemplateId, Trace>,
    cmp_variants: BTreeMap<TemplateId, Trace>,
    addrs: BTreeMap<TemplateId, AtmAddr>,
    error_addr: AtmAddr,
}

impl TraceLibrary {
    /// Builds the full T1–T12 library with a 64-entry ATM.
    ///
    /// The build walks every template through the trace compiler, so
    /// it is far too expensive for a per-simulation hot path (the
    /// harness constructs one library per probe). The first call does
    /// the real build; later calls clone a memoized copy, which is two
    /// orders of magnitude cheaper. Callers still own an independent
    /// library (ATM occupancy counters and all), so mutation stays
    /// simulation-local.
    pub fn standard() -> Self {
        static STANDARD: std::sync::OnceLock<TraceLibrary> = std::sync::OnceLock::new();
        STANDARD
            .get_or_init(|| Self::with_atm(Atm::new(64)))
            .clone()
    }

    /// Builds the library into the provided ATM.
    ///
    /// # Panics
    ///
    /// Panics if the ATM cannot hold the six resident traces.
    pub fn with_atm(mut atm: Atm) -> Self {
        use AccelKind::*;
        let mut addrs = BTreeMap::new();

        // The split-out error-reporting subsequence (§IV-B): serialize
        // the error, frame it, encrypt, send — then tell the CPU.
        let error_trace = TraceBuilder::new("report_error")
            .seq([Ser, Rpc, Encr, Tcp])
            .to_cpu()
            .build();
        let error_addr = atm
            .store(error_trace)
            .expect("ATM too small for error trace");

        // T7: receive response to a write.
        let t7 = TraceBuilder::new("T7")
            .seq([Tcp, Decr, Dser])
            .branch(
                BranchCond::Exception,
                |b| b.next_trace(error_addr),
                |b| b.seq([Ldb]).to_cpu(),
            )
            .build();
        let t7_addr = atm.store(t7.clone()).expect("ATM too small");
        addrs.insert(TemplateId::T7, t7_addr);

        // T10: receive RPC response.
        let t10 = TraceBuilder::new("T10")
            .seq([Tcp, Decr, Rpc, Dser])
            .branch(
                BranchCond::Exception,
                |b| b.next_trace(error_addr),
                |b| {
                    b.branch(BranchCond::Compressed, |b| b.seq([Dcmp]), |b| b)
                        .seq([Ldb])
                        .to_cpu()
                },
            )
            .build();
        let t10_addr = atm.store(t10.clone()).expect("ATM too small");
        addrs.insert(TemplateId::T10, t10_addr);

        // T6: receive response to a read to the DB. Found → maybe
        // decompress, hand to the CPU *and* write the DB cache in
        // parallel (re-compressing if the cache stores compressed
        // data); the cache write elicits a T7 response. Not found →
        // report the error.
        let t6 = TraceBuilder::new("T6")
            .seq([Tcp, Decr, Dser])
            .branch(
                BranchCond::Found,
                |b| {
                    b.branch(BranchCond::Compressed, |b| b.seq([Dcmp]), |b| b)
                        .fork_to_cpu()
                        .branch(BranchCond::CacheCompressed, |b| b.seq([Cmp]), |b| b)
                        .seq([Ser, Encr, Tcp])
                        .next_trace(t7_addr)
                },
                |b| b.next_trace(error_addr),
            )
            .build();
        let t6_addr = atm.store(t6.clone()).expect("ATM too small");
        addrs.insert(TemplateId::T6, t6_addr);

        // T5: receive response to a read to the DB cache. Hit → maybe
        // decompress, pick a core, notify. Miss → send the read to the
        // DB and arm T6.
        let t5 = TraceBuilder::new("T5")
            .seq([Tcp, Decr, Dser])
            .branch(
                BranchCond::Hit,
                |b| {
                    b.branch(BranchCond::Compressed, |b| b.seq([Dcmp]), |b| b)
                        .seq([Ldb])
                        .to_cpu()
                },
                |b| b.seq([Ser, Encr, Tcp]).next_trace(t6_addr),
            )
            .build();
        let t5_addr = atm.store(t5.clone()).expect("ATM too small");
        addrs.insert(TemplateId::T5, t5_addr);

        // T12: receive HTTP response (errors handled by the CPU).
        let t12 = TraceBuilder::new("T12")
            .seq([Tcp, Decr, Dser])
            .branch(BranchCond::Compressed, |b| b.seq([Dcmp]), |b| b)
            .seq([Ldb])
            .to_cpu()
            .build();
        let t12_addr = atm.store(t12.clone()).expect("ATM too small");
        addrs.insert(TemplateId::T12, t12_addr);

        let mut entries = BTreeMap::new();
        let mut cmp_variants = BTreeMap::new();

        // T1: receive function request (Fig 4a / Listing 1).
        entries.insert(
            TemplateId::T1,
            TraceBuilder::new("T1")
                .seq([Tcp, Decr, Rpc, Dser])
                .branch(
                    BranchCond::Compressed,
                    |b| b.trans(DataFormat::Json, DataFormat::Str).seq([Dcmp]),
                    |b| b,
                )
                .seq([Ldb])
                .to_cpu()
                .build(),
        );
        // T2 / T3: send function response (Fig 2a), without / with Cmp.
        entries.insert(
            TemplateId::T2,
            TraceBuilder::new("T2")
                .seq([Ser, Rpc, Encr, Tcp])
                .to_cpu()
                .build(),
        );
        entries.insert(
            TemplateId::T3,
            TraceBuilder::new("T3")
                .seq([Cmp, Ser, Rpc, Encr, Tcp])
                .to_cpu()
                .build(),
        );
        // T4: send read request to the DB cache (Fig 2b), arming T5.
        entries.insert(
            TemplateId::T4,
            TraceBuilder::new("T4")
                .seq([Ser, Encr, Tcp])
                .next_trace(t5_addr)
                .build(),
        );
        entries.insert(TemplateId::T5, t5);
        entries.insert(TemplateId::T6, t6);
        entries.insert(TemplateId::T7, t7);
        // T8: send write request, arming T7.
        entries.insert(
            TemplateId::T8,
            TraceBuilder::new("T8")
                .seq([Ser, Encr, Tcp])
                .next_trace(t7_addr)
                .build(),
        );
        cmp_variants.insert(
            TemplateId::T8,
            TraceBuilder::new("T8+Cmp")
                .seq([Cmp, Ser, Encr, Tcp])
                .next_trace(t7_addr)
                .build(),
        );
        // T9: send RPC request, arming T10.
        entries.insert(
            TemplateId::T9,
            TraceBuilder::new("T9")
                .seq([Ser, Rpc, Encr, Tcp])
                .next_trace(t10_addr)
                .build(),
        );
        cmp_variants.insert(
            TemplateId::T9,
            TraceBuilder::new("T9+Cmp")
                .seq([Cmp, Ser, Rpc, Encr, Tcp])
                .next_trace(t10_addr)
                .build(),
        );
        entries.insert(TemplateId::T10, t10);
        // T11: send HTTP request, arming T12.
        entries.insert(
            TemplateId::T11,
            TraceBuilder::new("T11")
                .seq([Ser, Encr, Tcp])
                .next_trace(t12_addr)
                .build(),
        );
        cmp_variants.insert(
            TemplateId::T11,
            TraceBuilder::new("T11+Cmp")
                .seq([Cmp, Ser, Encr, Tcp])
                .next_trace(t12_addr)
                .build(),
        );
        entries.insert(TemplateId::T12, t12);

        TraceLibrary {
            atm,
            entries,
            cmp_variants,
            addrs,
            error_addr,
        }
    }

    /// The entry trace of a template.
    pub fn entry(&self, id: TemplateId) -> &Trace {
        &self.entries[&id]
    }

    /// The with-compression variant of T8/T9/T11 (other templates
    /// return their base form — T1/T5/T6/T10/T12 branch at run time,
    /// and T3 *is* T2's compressed form).
    pub fn entry_with_cmp(&self, id: TemplateId) -> &Trace {
        self.cmp_variants.get(&id).unwrap_or_else(|| self.entry(id))
    }

    /// The ATM address of a message-triggered continuation trace.
    pub fn addr(&self, id: TemplateId) -> Option<AtmAddr> {
        self.addrs.get(&id).copied()
    }

    /// The ATM address of the split-out error-reporting trace.
    pub fn error_addr(&self) -> AtmAddr {
        self.error_addr
    }

    /// The ATM holding the resident traces.
    pub fn atm(&self) -> &Atm {
        &self.atm
    }

    /// Mutable access to the ATM (the machine counts reads through it).
    pub fn atm_mut(&mut self) -> &mut Atm {
        &mut self.atm
    }

    /// Derives the Table I connectivity matrix: for every accelerator,
    /// which neighbors feed it and which consume its output, across all
    /// templates and all resolved paths.
    pub fn connectivity(&self) -> ConnectivityMatrix {
        let mut matrix: ConnectivityMatrix = AccelKind::ALL
            .iter()
            .map(|&k| (k, (BTreeSet::new(), BTreeSet::new())))
            .collect();
        for (&id, trace) in &self.entries {
            let origin = if id.message_triggered() {
                Neighbor::Network
            } else {
                Neighbor::Cpu
            };
            for path in trace.all_paths() {
                let mut prev = origin;
                for step in &path {
                    match step {
                        PathStep::Accel(kind) => {
                            matrix
                                .get_mut(kind)
                                .expect("all kinds present")
                                .0
                                .insert(prev);
                            if let Neighbor::Accel(p) = prev {
                                matrix
                                    .get_mut(&p)
                                    .expect("all kinds present")
                                    .1
                                    .insert(Neighbor::Accel(*kind));
                            }
                            prev = Neighbor::Accel(*kind);
                        }
                        PathStep::Cpu => {
                            if let Neighbor::Accel(p) = prev {
                                matrix
                                    .get_mut(&p)
                                    .expect("all kinds present")
                                    .1
                                    .insert(Neighbor::Cpu);
                            }
                        }
                        PathStep::Chain(_) => {
                            if let Neighbor::Accel(p) = prev {
                                matrix
                                    .get_mut(&p)
                                    .expect("all kinds present")
                                    .1
                                    .insert(Neighbor::Network);
                            }
                        }
                    }
                }
            }
        }
        matrix
    }

    /// Fraction of templates containing at least one branch (§III Q2
    /// reports 54–83% of *sequences*; the template library itself is
    /// branch-heavy).
    pub fn branch_fraction(&self) -> f64 {
        let with = self
            .entries
            .values()
            .filter(|t| t.branch_count() > 0)
            .count();
        with as f64 / self.entries.len() as f64
    }
}

impl Default for TraceLibrary {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::PayloadFlags;

    #[test]
    fn all_twelve_templates_exist() {
        let lib = TraceLibrary::standard();
        for id in TemplateId::ALL {
            let t = lib.entry(id);
            assert!(t.accelerator_count() > 0, "{id}");
            assert!(t.validate().is_ok(), "{id}");
        }
    }

    #[test]
    fn message_triggered_traces_live_in_atm() {
        let lib = TraceLibrary::standard();
        for id in [
            TemplateId::T5,
            TemplateId::T6,
            TemplateId::T7,
            TemplateId::T10,
            TemplateId::T12,
        ] {
            let addr = lib
                .addr(id)
                .unwrap_or_else(|| panic!("{id} must be ATM-resident"));
            assert_eq!(lib.atm().peek(addr).unwrap().name(), id.name());
        }
        // T1 is message-triggered but pre-armed in every TCP, not chained.
        assert!(lib.addr(TemplateId::T1).is_none());
    }

    #[test]
    fn request_traces_chain_to_their_responses() {
        let lib = TraceLibrary::standard();
        let flags = PayloadFlags::default();
        // T4 miss-path: ... → chain to T5's address.
        let t4_path = lib.entry(TemplateId::T4).resolve_path(&flags);
        assert_eq!(
            t4_path.last(),
            Some(&PathStep::Chain(lib.addr(TemplateId::T5).unwrap()))
        );
        let t9_path = lib.entry(TemplateId::T9).resolve_path(&flags);
        assert_eq!(
            t9_path.last(),
            Some(&PathStep::Chain(lib.addr(TemplateId::T10).unwrap()))
        );
        let t8_path = lib.entry_with_cmp(TemplateId::T8).resolve_path(&flags);
        assert_eq!(
            t8_path.last(),
            Some(&PathStep::Chain(lib.addr(TemplateId::T7).unwrap()))
        );
        assert_eq!(t8_path[0], PathStep::Accel(AccelKind::Cmp));
    }

    #[test]
    fn t5_miss_chains_to_t6_and_t6_write_chains_to_t7() {
        let lib = TraceLibrary::standard();
        let miss = lib
            .entry(TemplateId::T5)
            .resolve_path(&PayloadFlags::default());
        assert_eq!(
            miss.last(),
            Some(&PathStep::Chain(lib.addr(TemplateId::T6).unwrap()))
        );

        let found = lib.entry(TemplateId::T6).resolve_path(&PayloadFlags {
            found: true,
            ..Default::default()
        });
        assert_eq!(
            found.last(),
            Some(&PathStep::Chain(lib.addr(TemplateId::T7).unwrap()))
        );
        // Fork delivered the data to the CPU mid-path.
        assert!(found.contains(&PathStep::Cpu));
    }

    #[test]
    fn exception_paths_use_the_split_error_trace() {
        let lib = TraceLibrary::standard();
        for id in [TemplateId::T7, TemplateId::T10] {
            let path = lib.entry(id).resolve_path(&PayloadFlags {
                exception: true,
                ..Default::default()
            });
            assert_eq!(
                path.last(),
                Some(&PathStep::Chain(lib.error_addr())),
                "{id}"
            );
        }
        // T6 not-found also reports the error.
        let path = lib
            .entry(TemplateId::T6)
            .resolve_path(&PayloadFlags::default());
        assert_eq!(path.last(), Some(&PathStep::Chain(lib.error_addr())));
        // The error trace is the four-accelerator subsequence of §IV-B.
        let err = lib.atm().peek(lib.error_addr()).unwrap();
        assert_eq!(err.accelerator_count(), 4);
    }

    #[test]
    fn branch_conditions_match_section_vii_b2() {
        // §VII-B2: "The possible branch conditions are: Compressed?,
        // Exception?, Hit?, and Found?" (plus T6's C-Compressed).
        let lib = TraceLibrary::standard();
        let mut seen = BTreeSet::new();
        for id in TemplateId::ALL {
            for slot in lib.entry(id).slots() {
                if let crate::ir::Slot::Branch { cond, .. } = slot {
                    seen.insert(format!("{cond}"));
                }
            }
        }
        assert!(seen.contains("Compressed?"));
        assert!(seen.contains("Exception?"));
        assert!(seen.contains("Hit?"));
        assert!(seen.contains("Found?"));
        assert!(seen.contains("C-Compressed?"));
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn connectivity_matches_table_i_shape() {
        let lib = TraceLibrary::standard();
        let m = lib.connectivity();
        use AccelKind::*;
        use Neighbor::*;
        // Spot-check rows against Table I's structure.
        let (tcp_src, tcp_dst) = &m[&Tcp];
        assert!(
            tcp_src.contains(&Accel(Encr)),
            "Encr feeds TCP on every send"
        );
        assert!(tcp_src.contains(&Network), "TCP receives from the network");
        assert!(tcp_dst.contains(&Accel(Decr)), "TCP feeds Decr on receive");

        let (ldb_src, ldb_dst) = &m[&Ldb];
        assert!(ldb_src.contains(&Accel(Dser)) || ldb_src.contains(&Accel(Dcmp)));
        assert_eq!(
            ldb_dst.iter().collect::<Vec<_>>(),
            vec![&Cpu],
            "LdB only feeds the CPU"
        );

        let (dser_src, dser_dst) = &m[&Dser];
        assert!(dser_src.contains(&Accel(Decr)) || dser_src.contains(&Accel(Rpc)));
        assert!(dser_dst.contains(&Accel(Ldb)));
        assert!(dser_dst.contains(&Accel(Dcmp)));
        assert!(dser_dst.contains(&Accel(Ser)), "T5 miss: Dser → Ser");

        // Every accelerator both consumes and produces somewhere.
        for kind in AccelKind::ALL {
            let (src, dst) = &m[&kind];
            assert!(!src.is_empty(), "{kind} has no sources");
            assert!(!dst.is_empty(), "{kind} has no destinations");
        }
    }

    #[test]
    fn library_is_branch_heavy() {
        let lib = TraceLibrary::standard();
        assert!(lib.branch_fraction() > 0.4);
    }

    #[test]
    fn template_metadata() {
        assert_eq!(TemplateId::T1.name(), "T1");
        assert!(TemplateId::T5.message_triggered());
        assert!(!TemplateId::T4.message_triggered());
        assert!(TemplateId::T8.description().contains("write"));
        assert_eq!(TemplateId::ALL.len(), 12);
    }

    #[test]
    fn all_templates_pack_within_budget() {
        // Every template (including branches/transform/tail fields)
        // packs; the pure-sequence ones fit the paper's 8 bytes.
        let lib = TraceLibrary::standard();
        for id in TemplateId::ALL {
            let bytes = crate::packed::pack(lib.entry(id)).unwrap_or_else(|e| panic!("{id}: {e}"));
            assert!(bytes.len() <= 20, "{id} packs to {} bytes", bytes.len());
        }
        let t2 = crate::packed::pack(lib.entry(TemplateId::T2)).unwrap();
        assert!(t2.len() <= 8, "T2 is a simple sequence: {} bytes", t2.len());
    }
}
