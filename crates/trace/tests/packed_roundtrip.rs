//! Differential fuzzing of the packed nibble encoding.
//!
//! `pack ∘ unpack` must be the identity over every valid trace, and
//! [`split_for_packing`] chains must execute the same path as the
//! unsplit original. Rather than enumerate shapes by hand, this harness
//! drives the generators with a fixed-seed [`SimRng`] so each run
//! covers >10k random programs reproducibly: all nine accelerator
//! kinds, every branch condition (including `Custom` mask/expect
//! payloads), transforms over every format pair, mid-trace `NextTrace`
//! chains, forks, and jumps — plus the regression shape from the split
//! bug, traces whose *first* slot is a branch target.

use accelflow_sim::rng::SimRng;
use accelflow_trace::atm::AtmAddr;
use accelflow_trace::cond::{BranchCond, PayloadFlags};
use accelflow_trace::format::{DataFormat, Transform};
use accelflow_trace::ir::{PathStep, Slot, Trace};
use accelflow_trace::kind::AccelKind;
use accelflow_trace::packed::{pack, split_for_packing, unpack};

/// ATM addresses at or above this are reserved for split-chain links,
/// so a randomly generated mid-trace `NextTrace` can never be mistaken
/// for one.
const CHAIN_BASE: u16 = 0xFF00;

/// Random branch condition, covering all six variants.
fn random_cond(rng: &mut SimRng) -> BranchCond {
    match rng.index(6) {
        0 => BranchCond::Compressed,
        1 => BranchCond::Hit,
        2 => BranchCond::Found,
        3 => BranchCond::Exception,
        4 => BranchCond::CacheCompressed,
        _ => BranchCond::Custom {
            mask: rng.index(256) as u8,
            expect: rng.index(256) as u8,
        },
    }
}

/// Random forward target for a transfer at slot `i` in a `len`-slot
/// trace: validation requires `i < target <= len`, and `max_target`
/// additionally caps the reach (15 for directly-packable traces, small
/// values to keep splits feasible).
fn random_target(rng: &mut SimRng, i: usize, len: usize, max_target: usize) -> u8 {
    let lo = i + 1;
    let hi = len.min(max_target);
    debug_assert!(lo <= hi);
    (lo + rng.index(hi - lo + 1)) as u8
}

/// One random slot at index `i`. Control transfers only appear where a
/// legal target exists.
fn random_slot(rng: &mut SimRng, i: usize, len: usize, max_target: usize) -> Slot {
    let can_transfer = i < len.min(max_target);
    loop {
        match rng.index(10) {
            0..=4 => return Slot::Accel(AccelKind::from_id(rng.index(9) as u8).expect("ids 0-8")),
            5 => return Slot::ToCpu,
            6 => return Slot::ForkToCpu,
            7 => {
                let src = DataFormat::from_code(rng.index(5) as u8).expect("codes 0-4");
                let dst = DataFormat::from_code(rng.index(5) as u8).expect("codes 0-4");
                return Slot::Transform(Transform { src, dst });
            }
            8 => return Slot::NextTrace(AtmAddr(rng.index(CHAIN_BASE as usize) as u16)),
            _ if can_transfer => {
                if rng.chance(0.5) {
                    return Slot::Branch {
                        cond: random_cond(rng),
                        on_true: random_target(rng, i, len, max_target),
                        on_false: random_target(rng, i, len, max_target),
                    };
                }
                return Slot::Jump(random_target(rng, i, len, max_target));
            }
            _ => {} // transfer drawn where none is legal: redraw
        }
    }
}

/// A random valid trace of `len` slots whose transfers stay within
/// `max_target`.
fn random_trace(rng: &mut SimRng, name: &str, len: usize, max_target: usize) -> Trace {
    let slots = (0..len)
        .map(|i| random_slot(rng, i, len, max_target))
        .collect();
    Trace::try_new(name, slots).expect("generator produces valid programs")
}

fn random_flags(rng: &mut SimRng) -> PayloadFlags {
    PayloadFlags {
        compressed: rng.chance(0.5),
        hit: rng.chance(0.5),
        found: rng.chance(0.5),
        exception: rng.chance(0.5),
        cache_compressed: rng.chance(0.5),
        custom_field: rng.index(256) as u8,
    }
}

/// `pack ∘ unpack == id` over 10k random directly-packable traces.
#[test]
fn roundtrip_identity_over_random_traces() {
    let mut rng = SimRng::seed(0xF00D);
    for case in 0..10_000u32 {
        let len = 1 + rng.index(15);
        let t = random_trace(&mut rng, &format!("fuzz{case}"), len, 15);
        let bytes = pack(&t).unwrap_or_else(|e| panic!("case {case}: pack failed: {e}\n{t:?}"));
        let back = unpack("back", &bytes)
            .unwrap_or_else(|e| panic!("case {case}: unpack failed: {e}\n{t:?}"));
        assert_eq!(back.slots(), t.slots(), "case {case} not a round trip");
    }
}

/// Splits `t` repeatedly until every piece packs, verifying each piece
/// round-trips, then re-executes the chain and compares the joined path
/// against the original under random payload flags. Returns `false` if
/// no safe cut exists (legitimate only when some transfer spans the
/// window — asserted by brute force).
fn check_split_chain(rng: &mut SimRng, t: &Trace, max_slots: usize) -> bool {
    let mut pieces: Vec<Trace> = Vec::new();
    let mut rest = t.clone();
    let mut round = 0u16;
    while rest.slots().len() > max_slots {
        match split_for_packing(&rest, max_slots, AtmAddr(CHAIN_BASE + round)) {
            Some((head, tail)) => {
                assert!(head.slots().len() <= max_slots, "head exceeds the window");
                assert!(tail.slots().len() < rest.slots().len(), "tail must shrink");
                pieces.push(head);
                rest = tail;
                round += 1;
            }
            None => {
                // Only legal when no cut keeps every transfer inside
                // the head. Re-derive that from the slots directly.
                let slots = rest.slots();
                let limit = (max_slots - 1).min(slots.len() - 1);
                for c in 1..=limit {
                    let safe = slots[..c].iter().all(|s| match s {
                        Slot::Branch {
                            on_true, on_false, ..
                        } => (*on_true as usize) <= c && (*on_false as usize) <= c,
                        Slot::Jump(t) => (*t as usize) <= c,
                        _ => true,
                    });
                    assert!(!safe, "split declined but cut {c} was safe: {slots:?}");
                }
                return false;
            }
        }
    }
    pieces.push(rest);

    // Every piece must survive the encoding round trip.
    for (i, piece) in pieces.iter().enumerate() {
        let bytes = pack(piece).unwrap_or_else(|e| panic!("piece {i}: pack failed: {e}"));
        let back = unpack("piece", &bytes).unwrap_or_else(|e| panic!("piece {i}: {e}"));
        assert_eq!(back.slots(), piece.slots(), "piece {i} not a round trip");
    }

    // Execute the chain: follow each piece's resolved path; a trailing
    // Chain(addr) hands off to the piece the split registered at that
    // address (piece k+1 was chained at AtmAddr(k)).
    for _ in 0..4 {
        let flags = random_flags(rng);
        let mut joined: Vec<PathStep> = Vec::new();
        let mut at = 0usize;
        loop {
            let mut path = pieces[at].resolve_path(&flags);
            match path.last() {
                Some(PathStep::Chain(addr))
                    if addr.0 >= CHAIN_BASE && ((addr.0 - CHAIN_BASE) as usize) == at =>
                {
                    assert!(
                        at + 1 < pieces.len(),
                        "chain link points past the last piece"
                    );
                    path.pop();
                    joined.extend(path);
                    at += 1;
                }
                _ => {
                    joined.extend(path);
                    break;
                }
            }
        }
        assert_eq!(
            joined,
            t.resolve_path(&flags),
            "chained path diverges under {flags:?}\npieces: {pieces:?}"
        );
    }
    true
}

/// Random long traces split into ATM chains: each piece round-trips and
/// the chained execution path matches the original.
#[test]
fn split_chains_preserve_paths_over_random_traces() {
    let mut rng = SimRng::seed(0xCAFE);
    let mut split_ok = 0u32;
    for case in 0..2_000u32 {
        let len = 16 + rng.index(45);
        let slots: Vec<Slot> = (0..len)
            .map(|i| {
                // Short transfer reach keeps most traces splittable.
                let reach = (i + 2 + rng.index(4)).min(len);
                random_slot(&mut rng, i, len, reach)
            })
            .collect();
        let t = Trace::try_new(format!("chain{case}"), slots).expect("valid");
        if check_split_chain(&mut rng, &t, 15) {
            split_ok += 1;
        }
    }
    assert!(
        split_ok > 1_500,
        "only {split_ok}/2000 traces admitted safe cuts — generator degenerated"
    );
}

/// The split-bug regression shape, fuzzed: the first slot is a branch
/// whose true arm targets slot 1 (so slot 1 is a branch target) and
/// whose false arm lands a random short distance ahead.
#[test]
fn split_chains_with_leading_branch_target() {
    let mut rng = SimRng::seed(0xBEA7);
    let mut split_ok = 0u32;
    for case in 0..1_000u32 {
        let len = 16 + rng.index(30);
        let reach = 2 + rng.index(10);
        let mut slots = vec![Slot::Branch {
            cond: random_cond(&mut rng),
            on_true: 1,
            on_false: random_target(&mut rng, 0, len, reach),
        }];
        slots.extend((1..len).map(|i| {
            let max_target = (i + 2 + rng.index(4)).min(len);
            random_slot(&mut rng, i, len, max_target)
        }));
        let t = Trace::try_new(format!("lead{case}"), slots).expect("valid");
        if check_split_chain(&mut rng, &t, 15) {
            split_ok += 1;
        }
    }
    assert!(
        split_ok > 800,
        "only {split_ok}/1000 leading-branch traces admitted safe cuts"
    );
}
