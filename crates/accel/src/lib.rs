//! Models of the nine datacenter-tax accelerators (paper §III, §IV-A,
//! §V, §VI).
//!
//! Each accelerator is a station with a standard interface: a 64-entry
//! SRAM input queue (with a memory overflow area), eight processing
//! elements with 64 KB scratchpads, a set-associative TLB fed by the
//! IOMMU, and input/output dispatchers. The compute time of a PE is
//! modeled the way the paper models it (§VI "How We Model the
//! Accelerators"): measure the CPU cycles of the operation, divide by
//! the accelerator's literature speedup.
//!
//! - [`timing`] — per-kind CPU-cost models, literature speedups, and
//!   payload-size transfer functions.
//! - [`queue`] — queue entries (trace + position mark + tenant +
//!   payload descriptor) and the bounded input queue with its overflow
//!   area.
//! - [`dispatcher`] — glue-instruction accounting for the output
//!   dispatcher (Fig 8) and the input-dispatcher scheduling policies
//!   (FIFO, priority, deadline-aware; §IV-C).
//! - [`accelerator`] — the accelerator station: admission, PE
//!   assignment (with tenant-aware scratchpad wipes, §IV-D), and
//!   utilization stats.

#![warn(missing_docs)]

pub mod accelerator;
pub mod dispatcher;
pub mod queue;
pub mod timing;

pub use accelerator::{Accelerator, AdmitOutcome};
pub use dispatcher::QueuePolicy;
pub use queue::{QueueEntry, RequestId, TenantId};
pub use timing::ServiceTimeModel;
