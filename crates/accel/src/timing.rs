//! Service-time models for the nine accelerators.
//!
//! The paper (§VI, "How We Model the Accelerators") does not simulate
//! accelerator RTL. It measures how many cycles a CPU takes for each
//! tax operation `C` and charges the accelerator `C / S`, where `S` is
//! the speedup the accelerator's paper reports (averaged across input
//! sizes): **TCP 3.5 (F4T), (De)Encr 6.6 (QTLS), RPC 20.5 (Cerebros),
//! (De)Ser 3.8 (ProtoAcc), Dcmp 4.1 / Cmp 15.2 (CDPU), LdB 8.1 (Intel
//! DLB)**. We adopt exactly that abstraction.
//!
//! The CPU cycle counts themselves are synthesized as
//! `fixed + per_byte × payload` and calibrated (see DESIGN.md §5)
//! so that the *Non-acc* execution-time breakdown reproduces the
//! paper's Fig 1 averages.

use accelflow_sim::time::{Frequency, SimDuration};
use accelflow_trace::kind::AccelKind;

/// CPU cycle cost of one tax operation: `fixed + per_byte * bytes`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Fixed cycles per invocation (setup, headers, control).
    pub fixed_cycles: f64,
    /// Cycles per payload byte.
    pub cycles_per_byte: f64,
}

impl CostModel {
    /// Total CPU cycles for a payload of `bytes`.
    pub fn cycles(&self, bytes: u64) -> f64 {
        self.fixed_cycles + self.cycles_per_byte * bytes as f64
    }
}

/// The ensemble's timing model: CPU costs, accelerator speedups, and
/// payload-size transfer functions.
///
/// # Example
///
/// ```
/// use accelflow_accel::timing::ServiceTimeModel;
/// use accelflow_sim::time::Frequency;
/// use accelflow_trace::kind::AccelKind;
///
/// let model = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
/// let cpu = model.cpu_time(AccelKind::Tcp, 2048);
/// let acc = model.accel_time(AccelKind::Tcp, 2048);
/// // F4T accelerates TCP by 3.5x.
/// assert!((cpu.as_nanos_f64() / acc.as_nanos_f64() - 3.5).abs() < 0.01);
/// ```
#[derive(Clone, Debug)]
pub struct ServiceTimeModel {
    costs: [CostModel; AccelKind::COUNT],
    speedups: [f64; AccelKind::COUNT],
    clock: Frequency,
    /// Global multiplier on all speedups (§VII-C5 sweeps ×0.25–×4).
    speedup_scale: f64,
    /// Multiplier on CPU-side tax cycles (CPU-generation scaling).
    tax_cycle_scale: f64,
}

impl ServiceTimeModel {
    /// The calibrated baseline model at the given core clock.
    ///
    /// The cost/speedup tables are clock-independent constants, so
    /// they are built once and memoized; each call clones the cached
    /// tables and stamps in the requested clock. This keeps the call
    /// cheap enough for per-probe use in the harness hot path.
    pub fn calibrated(clock: Frequency) -> Self {
        static BASE: std::sync::OnceLock<ServiceTimeModel> = std::sync::OnceLock::new();
        let mut model = BASE
            .get_or_init(|| Self::build_calibrated(Frequency::from_ghz(1.0)))
            .clone();
        model.clock = clock;
        model
    }

    /// The uncached table build backing [`Self::calibrated`].
    fn build_calibrated(clock: Frequency) -> Self {
        use AccelKind::*;
        let mut costs = [CostModel {
            fixed_cycles: 0.0,
            cycles_per_byte: 0.0,
        }; AccelKind::COUNT];
        // Synthesized CPU cost models; see DESIGN.md §5. At the median
        // 2 KB payload these yield ops of a few µs — the paper's
        // "fine grained, potentially taking only tens of µs" regime —
        // and reproduce Fig 1's average breakdown on the service mix.
        costs[Tcp.id() as usize] = CostModel {
            fixed_cycles: 7_000.0,
            cycles_per_byte: 4.6,
        };
        costs[Encr.id() as usize] = CostModel {
            fixed_cycles: 3_200.0,
            cycles_per_byte: 3.1,
        };
        costs[Decr.id() as usize] = CostModel {
            fixed_cycles: 3_200.0,
            cycles_per_byte: 3.1,
        };
        costs[Rpc.id() as usize] = CostModel {
            fixed_cycles: 2_700.0,
            cycles_per_byte: 0.3,
        };
        costs[Ser.id() as usize] = CostModel {
            fixed_cycles: 3_800.0,
            cycles_per_byte: 4.9,
        };
        costs[Dser.id() as usize] = CostModel {
            fixed_cycles: 4_200.0,
            cycles_per_byte: 5.3,
        };
        costs[Cmp.id() as usize] = CostModel {
            fixed_cycles: 5_000.0,
            cycles_per_byte: 10.0,
        };
        costs[Dcmp.id() as usize] = CostModel {
            fixed_cycles: 3_600.0,
            cycles_per_byte: 4.6,
        };
        costs[Ldb.id() as usize] = CostModel {
            fixed_cycles: 5_400.0,
            cycles_per_byte: 0.0,
        };

        let mut speedups = [1.0; AccelKind::COUNT];
        speedups[Tcp.id() as usize] = 3.5; // F4T
        speedups[Encr.id() as usize] = 6.6; // QTLS
        speedups[Decr.id() as usize] = 6.6; // QTLS
        speedups[Rpc.id() as usize] = 20.5; // Cerebros
        speedups[Ser.id() as usize] = 3.8; // ProtoAcc
        speedups[Dser.id() as usize] = 3.8; // ProtoAcc
        speedups[Cmp.id() as usize] = 15.2; // CDPU compression
        speedups[Dcmp.id() as usize] = 4.1; // CDPU decompression
        speedups[Ldb.id() as usize] = 8.1; // Intel DLB

        ServiceTimeModel {
            costs,
            speedups,
            clock,
            speedup_scale: 1.0,
            tax_cycle_scale: 1.0,
        }
    }

    /// Scales all accelerator speedups (the §VII-C5 sensitivity knob).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn set_speedup_scale(&mut self, scale: f64) {
        assert!(scale > 0.0, "speedup scale must be positive");
        self.speedup_scale = scale;
    }

    /// Scales CPU-side tax cycles (CPU-generation factor; Fig 20).
    /// A factor above 1.0 means the CPU runs tax code *faster*.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn set_tax_speed_factor(&mut self, factor: f64) {
        assert!(factor > 0.0, "tax speed factor must be positive");
        self.tax_cycle_scale = 1.0 / factor;
    }

    /// The core clock used for cycle→time conversion.
    pub fn clock(&self) -> Frequency {
        self.clock
    }

    /// CPU cycles for one tax operation.
    pub fn cpu_cycles(&self, kind: AccelKind, bytes: u64) -> f64 {
        self.costs[kind.id() as usize].cycles(bytes) * self.tax_cycle_scale
    }

    /// Time for the operation on a CPU core.
    pub fn cpu_time(&self, kind: AccelKind, bytes: u64) -> SimDuration {
        self.clock.cycles(self.cpu_cycles(kind, bytes))
    }

    /// Effective speedup of the accelerator (literature × scale).
    pub fn speedup(&self, kind: AccelKind) -> f64 {
        self.speedups[kind.id() as usize] * self.speedup_scale
    }

    /// Time for the operation's compute phase `C` on an accelerator PE:
    /// `C / S` (paper §VI).
    pub fn accel_time(&self, kind: AccelKind, bytes: u64) -> SimDuration {
        // The accelerator's compute time does not improve with CPU
        // generation, so undo the tax scale.
        let base_cycles = self.costs[kind.id() as usize].cycles(bytes);
        self.clock.cycles(base_cycles / self.speedup(kind))
    }

    /// Output payload size of the operation given its input size.
    ///
    /// Compression shrinks the payload (~3×, typical for Zstd/Snappy on
    /// service data), decompression expands it back; serialization
    /// densifies slightly; framing and crypto are size-preserving; the
    /// load balancer carries no payload.
    pub fn output_bytes(&self, kind: AccelKind, input: u64) -> u64 {
        use AccelKind::*;
        match kind {
            Cmp => (input as f64 / 3.0).round().max(1.0) as u64,
            Dcmp => input.saturating_mul(3),
            Ser => (input as f64 * 0.9).round().max(1.0) as u64,
            Dser => (input as f64 * 1.1).round().max(1.0) as u64,
            Tcp | Encr | Decr | Rpc => input,
            // LdB does not process the payload (it picks a core); the
            // data passes through to the chosen core untouched.
            Ldb => input,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AccelKind::*;

    fn model() -> ServiceTimeModel {
        ServiceTimeModel::calibrated(Frequency::from_ghz(2.4))
    }

    #[test]
    fn speedups_match_the_literature() {
        let m = model();
        assert_eq!(m.speedup(Tcp), 3.5);
        assert_eq!(m.speedup(Encr), 6.6);
        assert_eq!(m.speedup(Decr), 6.6);
        assert_eq!(m.speedup(Rpc), 20.5);
        assert_eq!(m.speedup(Ser), 3.8);
        assert_eq!(m.speedup(Dser), 3.8);
        assert_eq!(m.speedup(Cmp), 15.2);
        assert_eq!(m.speedup(Dcmp), 4.1);
        assert_eq!(m.speedup(Ldb), 8.1);
    }

    #[test]
    fn ops_are_fine_grained() {
        // §I: "the basic operations to be accelerated are fine grained,
        // potentially taking only tens of µs" — CPU-side ops at the
        // median 2 KB payload must be single-digit µs to tens of µs.
        let m = model();
        for kind in AccelKind::ALL {
            let t = m.cpu_time(kind, 2048).as_micros_f64();
            assert!(t > 0.5 && t < 50.0, "{kind}: {t} us");
        }
    }

    #[test]
    fn accel_time_is_cpu_over_speedup() {
        let m = model();
        for kind in AccelKind::ALL {
            for bytes in [0u64, 512, 2048, 65536] {
                let cpu = m.cpu_time(kind, bytes).as_nanos_f64();
                let acc = m.accel_time(kind, bytes).as_nanos_f64();
                let ratio = cpu / acc;
                assert!(
                    (ratio - m.speedup(kind)).abs() / m.speedup(kind) < 0.01,
                    "{kind} {bytes}"
                );
            }
        }
    }

    #[test]
    fn speedup_scale_sweeps() {
        let mut m = model();
        let base = m.accel_time(Encr, 2048);
        m.set_speedup_scale(4.0);
        let fast = m.accel_time(Encr, 2048);
        assert!((base.as_nanos_f64() / fast.as_nanos_f64() - 4.0).abs() < 0.01);
        m.set_speedup_scale(0.25);
        let slow = m.accel_time(Encr, 2048);
        assert!((slow.as_nanos_f64() / base.as_nanos_f64() - 4.0).abs() < 0.01);
    }

    #[test]
    fn tax_factor_speeds_cpu_not_accel() {
        let mut m = model();
        let cpu_base = m.cpu_time(Tcp, 2048);
        let acc_base = m.accel_time(Tcp, 2048);
        m.set_tax_speed_factor(1.09); // Emerald Rapids
        assert!(m.cpu_time(Tcp, 2048) < cpu_base);
        assert_eq!(m.accel_time(Tcp, 2048), acc_base);
    }

    #[test]
    fn payload_size_transfer_functions() {
        let m = model();
        assert_eq!(m.output_bytes(Cmp, 3000), 1000);
        assert_eq!(m.output_bytes(Dcmp, 1000), 3000);
        assert_eq!(m.output_bytes(Tcp, 2048), 2048);
        assert_eq!(m.output_bytes(Ldb, 2048), 2048);
        assert!(m.output_bytes(Ser, 2048) < 2048);
        assert!(m.output_bytes(Dser, 2048) > 2048);
        assert_eq!(m.output_bytes(Cmp, 1), 1); // never rounds to zero
    }

    #[test]
    fn compression_is_asymmetric() {
        // CDPU: compression has a much larger speedup (15.2) than
        // decompression (4.1) — the paper's Cmp/Dcmp asymmetry.
        let m = model();
        assert!(m.accel_time(Cmp, 8192) < m.cpu_time(Cmp, 8192) * 0.1);
        assert!(m.accel_time(Dcmp, 8192) > m.cpu_time(Dcmp, 8192) * 0.2);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_scale_rejected() {
        model().set_speedup_scale(0.0);
    }
}
