//! Dispatcher models: glue-instruction accounting for the output
//! dispatcher (paper Fig 8, §VII-B2) and scheduling policies for the
//! input dispatcher (paper §IV-C, §V-1).

use accelflow_sim::time::{SimDuration, SimTime};
use accelflow_trace::ir::{Advance, GlueAction, Next};

use crate::queue::QueueEntry;

/// Glue-instruction cost of one output-dispatcher walk (paper §VII-B2):
///
/// - no branch / end / transform: **~15** RISC-like instructions;
/// - each branch resolved: **+7** (named flags) / +9 (custom tests);
/// - end of trace: **12–20** — we charge 14 for an ATM chain (read ATM,
///   move trace) and 18 for a CPU hand-off (program DMA, notify, clear);
/// - data transformation: **12 per 2 KB** of payload;
/// - a mid-trace fork to the CPU costs like a CPU hand-off (18).
///
/// Returns the instruction count; the machine converts instructions to
/// time at the dispatcher clock and charges energy per instruction.
pub fn output_dispatch_instructions(advance: &Advance, payload_bytes: u64) -> u32 {
    let mut instrs = 15u32;
    for action in &advance.actions {
        match action {
            GlueAction::Branch { cond, .. } => instrs += cond.resolve_instructions(),
            GlueAction::Transform(t) => instrs += t.dispatcher_instructions(payload_bytes),
            GlueAction::ForkToCpu => instrs += 18,
        }
    }
    match advance.next {
        Next::Invoke { .. } => {}
        Next::Chain(_) => instrs += 14,
        Next::ToCpu => instrs += 18,
    }
    instrs
}

/// Input-dispatcher scheduling policy (paper §V-1: FIFO by default;
/// priority and deadline-aware orders as extensions, §IV-C).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueuePolicy {
    /// First in, first out (the base AccelFlow design).
    #[default]
    Fifo,
    /// Highest `priority` tag first (FIFO among equals).
    Priority,
    /// Deadline-aware: pick the entry closest to violating its soft
    /// deadline; entries without deadlines run FIFO behind
    /// deadline-tagged ones only when those have negative slack.
    DeadlineAware,
}

impl QueuePolicy {
    /// Chooses which SRAM queue index the input dispatcher moves into
    /// the free PE next. Returns `None` when the queue slice is empty.
    pub fn select(self, entries: &[&QueueEntry], now: SimTime) -> Option<usize> {
        self.select_from(entries.iter().copied(), now)
    }

    /// [`QueuePolicy::select`] over any entry iterator, so callers can
    /// scan a queue in place without collecting a slice of references
    /// (the dispatch inner loop runs this on every PE start).
    pub fn select_from<'a, I>(self, mut entries: I, now: SimTime) -> Option<usize>
    where
        I: Iterator<Item = &'a QueueEntry>,
    {
        let head = entries.next()?;
        match self {
            QueuePolicy::Fifo => Some(0),
            QueuePolicy::Priority => {
                // Highest priority wins; FIFO among equals (strict
                // greater-than keeps the earliest index).
                let mut best = (0, head.priority);
                for (i, e) in entries.enumerate() {
                    if e.priority > best.1 {
                        best = (i + 1, e.priority);
                    }
                }
                Some(best.0)
            }
            QueuePolicy::DeadlineAware => {
                // Earliest-deadline-first among tagged entries; if the
                // head has comfortable slack and someone is about to
                // violate, the urgent one jumps the line (§IV-C's
                // slack-passing reorder).
                let head_deadline = head.deadline;
                let mut urgent = head_deadline.map(|d| (0usize, d));
                for (i, e) in entries.enumerate() {
                    if let Some(d) = e.deadline {
                        if urgent.map(|(_, ud)| d < ud).unwrap_or(true) {
                            urgent = Some((i + 1, d));
                        }
                    }
                }
                match urgent {
                    Some((i, deadline)) => match head_deadline {
                        // Head itself is the most urgent or equally
                        // urgent: FIFO.
                        Some(hd) if hd <= deadline => Some(0),
                        // Head has no deadline or later deadline:
                        // run the urgent entry if it is at risk,
                        // otherwise stay FIFO.
                        _ => {
                            if deadline <= now + SimDuration::from_micros(50) {
                                Some(i)
                            } else {
                                Some(0)
                            }
                        }
                    },
                    None => Some(0),
                }
            }
        }
    }
}

impl accelflow_sim::snapshot::Snapshot for QueuePolicy {
    fn save(&self, w: &mut accelflow_sim::snapshot::SnapWriter) {
        w.u8(match self {
            QueuePolicy::Fifo => 0,
            QueuePolicy::Priority => 1,
            QueuePolicy::DeadlineAware => 2,
        });
    }
    fn load(
        r: &mut accelflow_sim::snapshot::SnapReader<'_>,
    ) -> Result<Self, accelflow_sim::snapshot::SnapshotError> {
        Ok(match r.u8()? {
            0 => QueuePolicy::Fifo,
            1 => QueuePolicy::Priority,
            2 => QueuePolicy::DeadlineAware,
            other => {
                return Err(accelflow_sim::snapshot::SnapshotError::Corrupt(format!(
                    "unknown QueuePolicy tag {other}"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelflow_trace::atm::AtmAddr;
    use accelflow_trace::cond::{BranchCond, PayloadFlags};
    use accelflow_trace::format::{DataFormat, Transform};
    use accelflow_trace::ir::{PositionMark, Slot, Trace};
    use accelflow_trace::kind::AccelKind;
    use std::sync::Arc;

    use crate::queue::{RequestId, TenantId};

    fn advance(actions: Vec<GlueAction>, next: Next) -> Advance {
        Advance { actions, next }
    }

    #[test]
    fn plain_hop_costs_fifteen() {
        let adv = advance(
            vec![],
            Next::Invoke {
                kind: AccelKind::Ser,
                pm: PositionMark(1),
            },
        );
        assert_eq!(output_dispatch_instructions(&adv, 2048), 15);
    }

    #[test]
    fn branch_adds_seven() {
        let adv = advance(
            vec![GlueAction::Branch {
                cond: BranchCond::Hit,
                taken: true,
            }],
            Next::Invoke {
                kind: AccelKind::Ldb,
                pm: PositionMark(5),
            },
        );
        assert_eq!(output_dispatch_instructions(&adv, 2048), 22);
    }

    #[test]
    fn terminals_cost_twelve_to_twenty() {
        let chain = advance(vec![], Next::Chain(AtmAddr(1)));
        let to_cpu = advance(vec![], Next::ToCpu);
        let chain_cost = output_dispatch_instructions(&chain, 0) - 15;
        let cpu_cost = output_dispatch_instructions(&to_cpu, 0) - 15;
        assert!((12..=20).contains(&chain_cost));
        assert!((12..=20).contains(&cpu_cost));
    }

    #[test]
    fn transform_costs_twelve_per_2kb() {
        let t = Transform {
            src: DataFormat::Json,
            dst: DataFormat::Str,
        };
        let adv = advance(
            vec![GlueAction::Transform(t)],
            Next::Invoke {
                kind: AccelKind::Dcmp,
                pm: PositionMark(3),
            },
        );
        assert_eq!(output_dispatch_instructions(&adv, 2048), 27);
        assert_eq!(output_dispatch_instructions(&adv, 6000), 15 + 36);
    }

    #[test]
    fn worst_case_near_fifty() {
        // Paper: "in the worst case, an output dispatcher executes
        // about 50 RISC instructions".
        let t = Transform {
            src: DataFormat::Json,
            dst: DataFormat::Str,
        };
        let adv = advance(
            vec![
                GlueAction::Branch {
                    cond: BranchCond::Compressed,
                    taken: true,
                },
                GlueAction::Transform(t),
            ],
            Next::ToCpu,
        );
        let worst = output_dispatch_instructions(&adv, 2048);
        assert!((45..=55).contains(&worst), "{worst}");
    }

    fn entry(req: u64, priority: u8, deadline_us: Option<u64>) -> QueueEntry {
        QueueEntry {
            request: RequestId(req),
            tenant: TenantId(0),
            trace: Arc::new(Trace::new("t", vec![Slot::Accel(AccelKind::Tcp)])),
            pm: PositionMark(0),
            data_bytes: 512,
            flags: PayloadFlags::default(),
            vaddr: 0,
            deadline: deadline_us.map(|us| SimTime::ZERO + SimDuration::from_micros(us)),
            priority,
            enqueued_at: SimTime::ZERO,
            origin_core: 0,
            tag: 0,
        }
    }

    #[test]
    fn fifo_picks_head() {
        let a = entry(1, 0, None);
        let b = entry(2, 9, None);
        let picks = QueuePolicy::Fifo.select(&[&a, &b], SimTime::ZERO);
        assert_eq!(picks, Some(0));
        assert_eq!(QueuePolicy::Fifo.select(&[], SimTime::ZERO), None);
    }

    #[test]
    fn priority_picks_highest_fifo_among_equals() {
        let a = entry(1, 3, None);
        let b = entry(2, 9, None);
        let c = entry(3, 9, None);
        assert_eq!(
            QueuePolicy::Priority.select(&[&a, &b, &c], SimTime::ZERO),
            Some(1)
        );
        let d = entry(4, 3, None);
        assert_eq!(
            QueuePolicy::Priority.select(&[&a, &d], SimTime::ZERO),
            Some(0)
        );
    }

    #[test]
    fn deadline_aware_promotes_urgent_entries() {
        let now = SimTime::ZERO + SimDuration::from_micros(100);
        let relaxed = entry(1, 0, Some(10_000)); // 10 ms away
        let urgent = entry(2, 0, Some(120)); // 20 us away
        assert_eq!(
            QueuePolicy::DeadlineAware.select(&[&relaxed, &urgent], now),
            Some(1)
        );
        // Without urgency, FIFO.
        let far = entry(3, 0, Some(20_000));
        assert_eq!(
            QueuePolicy::DeadlineAware.select(&[&relaxed, &far], now),
            Some(0)
        );
        // No deadlines at all: FIFO.
        let plain = entry(4, 0, None);
        assert_eq!(
            QueuePolicy::DeadlineAware.select(&[&plain, &plain], now),
            Some(0)
        );
    }
}
