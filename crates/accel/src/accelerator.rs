//! The accelerator station: input queue + PEs + TLB + statistics
//! (paper Fig 6/9, §IV-A, §IV-D).
//!
//! An accelerator admits queue entries (from cores via `Enqueue`, or
//! from other accelerators' output dispatchers via A-DMA), assigns them
//! to free PEs under a scheduling policy, and tracks tenant occupancy
//! of PEs so that the machine can charge the scratchpad wipe the
//! fine-grained virtualization of §IV-D requires between tenants.

use accelflow_arch::config::ArchConfig;
use accelflow_arch::tlb::Tlb;
use accelflow_arch::topology::UnitId;
use accelflow_sim::stats::BusyTracker;
use accelflow_sim::time::{SimDuration, SimTime};
use accelflow_trace::kind::AccelKind;

use crate::dispatcher::QueuePolicy;
use crate::queue::{InputQueue, PushOutcome, QueueEntry, TenantId};

/// Outcome of offering work to the accelerator.
pub type AdmitOutcome = PushOutcome;

/// A job the input dispatcher just moved onto a PE.
#[derive(Clone, Debug)]
pub struct StartedJob {
    /// The queue entry now executing.
    pub entry: QueueEntry,
    /// Which PE runs it.
    pub pe: usize,
    /// Whether the PE's scratchpad must be wiped first (previous
    /// occupant belonged to a different tenant, §IV-D).
    pub tenant_wipe: bool,
    /// How long the entry waited in the input queue.
    pub queueing: SimDuration,
}

/// One accelerator instance.
///
/// # Example
///
/// ```
/// use accelflow_accel::accelerator::Accelerator;
/// use accelflow_accel::dispatcher::QueuePolicy;
/// use accelflow_arch::config::ArchConfig;
/// use accelflow_arch::topology::UnitId;
/// use accelflow_trace::kind::AccelKind;
///
/// let cfg = ArchConfig::icelake();
/// let acc = Accelerator::new(AccelKind::Tcp, UnitId(0), &cfg, QueuePolicy::Fifo);
/// assert_eq!(acc.kind(), AccelKind::Tcp);
/// assert!(acc.has_free_pe());
/// ```
#[derive(Clone, Debug)]
pub struct Accelerator {
    kind: AccelKind,
    unit: UnitId,
    input: InputQueue,
    policy: QueuePolicy,
    /// PE occupancy in struct-of-arrays form: one busy bitmask plus a
    /// dense last-tenant array, so the dispatch inner loop is bit math
    /// over a word and a linear probe of a small contiguous array.
    pe_busy: u64,
    pe_full: u64,
    pe_last_tenant: Vec<Option<TenantId>>,
    tlb: Tlb,
    busy: BusyTracker,
    processed: u64,
    tenant_wipes: u64,
}

impl Accelerator {
    /// Creates an accelerator with the configured queue/PE geometry.
    pub fn new(kind: AccelKind, unit: UnitId, cfg: &ArchConfig, policy: QueuePolicy) -> Self {
        let n = cfg.pes_per_accelerator;
        assert!((1..=64).contains(&n), "pes_per_accelerator must be 1..=64");
        Accelerator {
            kind,
            unit,
            input: InputQueue::new(cfg.input_queue_entries, cfg.overflow_entries),
            policy,
            pe_busy: 0,
            pe_full: if n == 64 { !0 } else { (1u64 << n) - 1 },
            pe_last_tenant: vec![None; n],
            tlb: Tlb::new(cfg),
            busy: BusyTracker::new(),
            processed: 0,
            tenant_wipes: 0,
        }
    }

    /// The accelerator's function.
    pub fn kind(&self) -> AccelKind {
        self.kind
    }

    /// The accelerator's placement unit.
    pub fn unit(&self) -> UnitId {
        self.unit
    }

    /// The scheduling policy in force.
    pub fn policy(&self) -> QueuePolicy {
        self.policy
    }

    /// Replaces the scheduling policy (e.g. for the SLO experiments).
    pub fn set_policy(&mut self, policy: QueuePolicy) {
        self.policy = policy;
    }

    /// Core-path admission (`Enqueue`): errors when the SRAM queue is
    /// full so the core can retry or fall back (§IV-A).
    pub fn admit_from_core(&mut self, entry: QueueEntry) -> Result<(), QueueEntry> {
        self.input.try_enqueue(entry)
    }

    /// Dispatcher-path admission: spills to the overflow area; rejects
    /// only when both queue and overflow are full (fall back to CPU).
    pub fn admit_from_dispatcher(&mut self, entry: QueueEntry) -> AdmitOutcome {
        self.input.push(entry)
    }

    /// Whether any PE is idle.
    pub fn has_free_pe(&self) -> bool {
        self.pe_busy != self.pe_full
    }

    /// Whether work is waiting.
    pub fn has_backlog(&self) -> bool {
        !self.input.is_empty()
    }

    /// Input-dispatcher step: if a PE is free and an entry is ready,
    /// move the policy's pick onto a PE, preferring a PE last used by
    /// the same tenant (avoids a scratchpad wipe).
    pub fn start_next(&mut self, now: SimTime) -> Option<StartedJob> {
        if self.pe_busy == self.pe_full || self.input.is_empty() {
            return None;
        }
        // FIFO takes the head without inspecting the queue; the other
        // policies scan the entries in place — no per-start allocation.
        let idx = match self.policy {
            QueuePolicy::Fifo => 0,
            _ => self.policy.select_from(self.input.iter(), now)?,
        };
        let entry = self.input.take(idx);

        // Prefer a free PE whose previous occupant shares the tenant.
        let free = !self.pe_busy & self.pe_full;
        let mut pe = None;
        let mut probe = free;
        while probe != 0 {
            let i = probe.trailing_zeros() as usize;
            if self.pe_last_tenant[i] == Some(entry.tenant) {
                pe = Some(i);
                break;
            }
            probe &= probe - 1;
        }
        let pe = pe.unwrap_or_else(|| free.trailing_zeros() as usize);
        let tenant_wipe = match self.pe_last_tenant[pe] {
            Some(t) => t != entry.tenant,
            None => false,
        };
        if tenant_wipe {
            self.tenant_wipes += 1;
        }
        self.pe_busy |= 1u64 << pe;
        self.pe_last_tenant[pe] = Some(entry.tenant);
        let queueing = now.saturating_since(entry.enqueued_at);
        Some(StartedJob {
            entry,
            pe,
            tenant_wipe,
            queueing,
        })
    }

    /// Marks a PE's job complete, accounting `busy_time` of PE
    /// occupancy.
    ///
    /// # Panics
    ///
    /// Panics if the PE was not busy.
    pub fn complete(&mut self, pe: usize, busy_time: SimDuration) {
        assert!(self.pe_busy & (1u64 << pe) != 0, "completing an idle PE");
        self.pe_busy &= !(1u64 << pe);
        self.busy.add_busy(busy_time);
        self.processed += 1;
    }

    /// The accelerator's address-translation cache.
    pub fn tlb_mut(&mut self) -> &mut Tlb {
        &mut self.tlb
    }

    /// Shared view of the TLB (for stats).
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// The input queue (for stats).
    pub fn input(&self) -> &InputQueue {
        &self.input
    }

    /// Jobs completed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Scratchpad wipes forced by tenant changes.
    pub fn tenant_wipes(&self) -> u64 {
        self.tenant_wipes
    }

    /// PE utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let window = now.as_picos() as f64 * self.pe_last_tenant.len() as f64;
        if window == 0.0 {
            0.0
        } else {
            (self.busy.busy().as_picos() as f64 / window).min(1.0)
        }
    }

    /// Number of busy PEs right now.
    pub fn busy_pes(&self) -> usize {
        self.pe_busy.count_ones() as usize
    }

    /// Indices of the PEs currently running a job (for fault injection:
    /// a station-wide stall poisons the jobs in flight).
    pub fn busy_pe_indices(&self) -> impl Iterator<Item = usize> + '_ {
        let mask = self.pe_busy;
        (0..self.pe_last_tenant.len()).filter(move |i| mask & (1u64 << i) != 0)
    }

    /// Removes the SRAM queue entry at `index` without running it (fault
    /// injection: an SRAM bit flip or lost credit drops the entry). The
    /// freed slot is refilled from the overflow area exactly as a normal
    /// dispatch would.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn drop_entry(&mut self, index: usize) -> QueueEntry {
        self.input.take(index)
    }

    /// Number of processing elements.
    pub fn pe_count(&self) -> usize {
        self.pe_last_tenant.len()
    }

    /// Cumulative PE busy time (sum over PEs). Windowed utilization
    /// samplers difference this between sampling instants.
    pub fn busy_time(&self) -> SimDuration {
        self.busy.busy()
    }
}

impl accelflow_sim::snapshot::Snapshot for Accelerator {
    fn save(&self, w: &mut accelflow_sim::snapshot::SnapWriter) {
        self.kind.save(w);
        w.u8(self.unit.0);
        self.input.save(w);
        self.policy.save(w);
        w.u64(self.pe_busy);
        w.u64(self.pe_full);
        self.pe_last_tenant.save(w);
        self.tlb.save(w);
        self.busy.save(w);
        w.u64(self.processed);
        w.u64(self.tenant_wipes);
    }
    fn load(
        r: &mut accelflow_sim::snapshot::SnapReader<'_>,
    ) -> Result<Self, accelflow_sim::snapshot::SnapshotError> {
        use accelflow_sim::snapshot::SnapshotError;
        let kind = AccelKind::load(r)?;
        let unit = UnitId(r.u8()?);
        let input = InputQueue::load(r)?;
        let policy = crate::dispatcher::QueuePolicy::load(r)?;
        let pe_busy = r.u64()?;
        let pe_full = r.u64()?;
        let pe_last_tenant = Vec::<Option<TenantId>>::load(r)?;
        let n = pe_last_tenant.len();
        let expect_full = if n == 64 { !0 } else { (1u64 << n) - 1 };
        if !(1..=64).contains(&n) || pe_full != expect_full || pe_busy & !pe_full != 0 {
            return Err(SnapshotError::Corrupt(format!(
                "inconsistent PE occupancy: {n} PEs, full {pe_full:#x}, busy {pe_busy:#x}"
            )));
        }
        Ok(Accelerator {
            kind,
            unit,
            input,
            policy,
            pe_busy,
            pe_full,
            pe_last_tenant,
            tlb: Tlb::load(r)?,
            busy: BusyTracker::load(r)?,
            processed: r.u64()?,
            tenant_wipes: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelflow_sim::time::SimDuration;
    use accelflow_trace::cond::PayloadFlags;
    use accelflow_trace::ir::{PositionMark, Slot, Trace};
    use std::sync::Arc;

    use crate::queue::RequestId;

    fn entry(req: u64, tenant: u16) -> QueueEntry {
        QueueEntry {
            request: RequestId(req),
            tenant: TenantId(tenant),
            trace: Arc::new(Trace::new("t", vec![Slot::Accel(AccelKind::Tcp)])),
            pm: PositionMark(0),
            data_bytes: 1024,
            flags: PayloadFlags::default(),
            vaddr: req * 0x10000,
            deadline: None,
            priority: 0,
            enqueued_at: SimTime::ZERO,
            origin_core: 0,
            tag: 0,
        }
    }

    fn accel() -> Accelerator {
        Accelerator::new(
            AccelKind::Tcp,
            UnitId(0),
            &ArchConfig::icelake(),
            QueuePolicy::Fifo,
        )
    }

    #[test]
    fn jobs_flow_through_pes() {
        let mut a = accel();
        a.admit_from_core(entry(1, 0)).unwrap();
        a.admit_from_core(entry(2, 0)).unwrap();
        let j1 = a.start_next(SimTime::ZERO).unwrap();
        let j2 = a.start_next(SimTime::ZERO).unwrap();
        assert_ne!(j1.pe, j2.pe);
        assert!(a.start_next(SimTime::ZERO).is_none(), "queue drained");
        assert_eq!(a.busy_pes(), 2);
        a.complete(j1.pe, SimDuration::from_micros(3));
        a.complete(j2.pe, SimDuration::from_micros(3));
        assert_eq!(a.busy_pes(), 0);
        assert_eq!(a.processed(), 2);
    }

    #[test]
    fn all_pes_busy_blocks_start() {
        let cfg = ArchConfig::icelake();
        let mut a = accel();
        for i in 0..cfg.pes_per_accelerator as u64 + 3 {
            a.admit_from_core(entry(i, 0)).unwrap();
        }
        let mut jobs = vec![];
        while let Some(j) = a.start_next(SimTime::ZERO) {
            jobs.push(j);
        }
        assert_eq!(jobs.len(), cfg.pes_per_accelerator);
        assert!(a.has_backlog());
        a.complete(jobs[0].pe, SimDuration::from_micros(1));
        assert!(a.start_next(SimTime::ZERO).is_some());
    }

    #[test]
    fn tenant_wipe_on_switch_and_affinity_avoids_it() {
        let mut a = accel();
        // Tenant 1 occupies a PE, finishes.
        a.admit_from_core(entry(1, 1)).unwrap();
        let j = a.start_next(SimTime::ZERO).unwrap();
        assert!(!j.tenant_wipe, "first use of a PE needs no wipe");
        let pe1 = j.pe;
        a.complete(pe1, SimDuration::from_micros(1));

        // Same tenant returns: the dispatcher prefers the same PE.
        a.admit_from_core(entry(2, 1)).unwrap();
        let j = a.start_next(SimTime::ZERO).unwrap();
        assert_eq!(j.pe, pe1);
        assert!(!j.tenant_wipe);
        a.complete(j.pe, SimDuration::from_micros(1));

        // Occupy every PE with tenant 1, then free exactly one; a
        // tenant-2 job must reuse it and pay the wipe.
        let cfg = ArchConfig::icelake();
        let mut jobs = vec![];
        for i in 0..cfg.pes_per_accelerator as u64 {
            a.admit_from_core(entry(100 + i, 1)).unwrap();
            jobs.push(a.start_next(SimTime::ZERO).unwrap());
        }
        let freed = jobs[3].pe;
        a.complete(freed, SimDuration::from_micros(1));
        a.admit_from_core(entry(200, 2)).unwrap();
        let j = a.start_next(SimTime::ZERO).unwrap();
        assert_eq!(j.pe, freed);
        assert!(j.tenant_wipe);
        assert_eq!(a.tenant_wipes(), 1);
    }

    #[test]
    fn queueing_time_is_reported() {
        let mut a = accel();
        let mut e = entry(1, 0);
        e.enqueued_at = SimTime::ZERO;
        a.admit_from_core(e).unwrap();
        let later = SimTime::ZERO + SimDuration::from_micros(7);
        let j = a.start_next(later).unwrap();
        assert_eq!(j.queueing, SimDuration::from_micros(7));
    }

    #[test]
    fn utilization_accumulates() {
        let mut a = accel();
        a.admit_from_core(entry(1, 0)).unwrap();
        let j = a.start_next(SimTime::ZERO).unwrap();
        a.complete(j.pe, SimDuration::from_micros(8));
        let now = SimTime::ZERO + SimDuration::from_micros(8);
        // 8 us busy on one of 8 PEs over an 8 us window = 1/8.
        assert!((a.utilization(now) - 0.125).abs() < 1e-9);
    }

    #[test]
    fn busy_pe_enumeration_and_entry_drop() {
        let mut a = accel();
        a.admit_from_core(entry(1, 0)).unwrap();
        a.admit_from_core(entry(2, 0)).unwrap();
        a.admit_from_core(entry(3, 0)).unwrap();
        let j = a.start_next(SimTime::ZERO).unwrap();
        assert_eq!(a.busy_pe_indices().collect::<Vec<_>>(), vec![j.pe]);
        // Drop the head of the two still queued; the other survives.
        assert_eq!(a.input().len(), 2);
        let dropped = a.drop_entry(0);
        assert_eq!(dropped.request, RequestId(2));
        assert_eq!(a.input().len(), 1);
        a.complete(j.pe, SimDuration::from_micros(1));
        assert_eq!(a.busy_pe_indices().count(), 0);
    }

    #[test]
    #[should_panic(expected = "idle PE")]
    fn completing_idle_pe_panics() {
        let mut a = accel();
        a.complete(0, SimDuration::ZERO);
    }

    #[test]
    fn snapshot_roundtrip_mid_flight() {
        use accelflow_sim::snapshot::{SnapReader, SnapWriter, Snapshot};
        let mut a = accel();
        for i in 0..5u64 {
            a.admit_from_core(entry(i, (i % 2) as u16)).unwrap();
        }
        let j = a.start_next(SimTime::ZERO).unwrap();
        a.complete(j.pe, SimDuration::from_micros(2));
        let _running = a.start_next(SimTime::ZERO).unwrap(); // left in flight
        let mut w = SnapWriter::new();
        a.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut b = Accelerator::load(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(b.kind(), a.kind());
        assert_eq!(b.busy_pes(), a.busy_pes());
        assert_eq!(b.processed(), a.processed());
        assert_eq!(b.input().len(), a.input().len());
        assert_eq!(b.busy_time(), a.busy_time());
        // Both copies dispatch the same next entry onto the same PE.
        let next_a = a.start_next(SimTime::ZERO).unwrap();
        let next_b = b.start_next(SimTime::ZERO).unwrap();
        assert_eq!(next_a.entry.request, next_b.entry.request);
        assert_eq!(next_a.pe, next_b.pe);
        assert_eq!(next_a.tenant_wipe, next_b.tenant_wipe);
    }

    #[test]
    fn corrupt_pe_mask_rejected() {
        use accelflow_sim::snapshot::{SnapReader, SnapWriter, Snapshot, SnapshotError};
        let a = accel();
        // Hand-encode a stream whose busy mask claims a PE outside the
        // station's geometry: load must reject it as corrupt.
        let mut v = SnapWriter::new();
        a.kind.save(&mut v);
        v.u8(a.unit.0);
        a.input.save(&mut v);
        a.policy.save(&mut v);
        v.u64(a.pe_full << 1); // busy bit outside pe_full
        v.u64(a.pe_full);
        a.pe_last_tenant.save(&mut v);
        a.tlb.save(&mut v);
        a.busy.save(&mut v);
        v.u64(0);
        v.u64(0);
        let bytes = v.into_bytes();
        assert!(matches!(
            Accelerator::load(&mut SnapReader::new(&bytes)),
            Err(SnapshotError::Corrupt(_))
        ));
    }
}
