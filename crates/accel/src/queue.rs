//! Accelerator queue entries and the bounded input queue with its
//! memory overflow area (paper §IV-A).
//!
//! A queue entry carries: the trace with its moving Position Mark, the
//! tenant ID (accelerators are shared by tenants, §IV-D), up to 2 KB of
//! inline data plus a Memory Pointer for larger payloads, and —
//! when the system runs SLOs — the request's soft deadline (§IV-C).
//!
//! Starvation/deadlock handling (§IV-A): a *core* that finds the queue
//! full gets an error and retries elsewhere; an *output dispatcher*
//! cannot retry, so it spills into the queue's overflow area in memory;
//! if even the overflow area is full, execution falls back to the CPU.

use std::collections::VecDeque;
use std::sync::Arc;

use accelflow_sim::time::SimTime;
use accelflow_trace::cond::PayloadFlags;
use accelflow_trace::ir::{PositionMark, Trace};

/// Identifies one request (one service invocation) end to end.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// Identifies a tenant sharing the accelerator ensemble (§IV-D).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u16);

/// One entry of an accelerator input (or output) queue.
#[derive(Clone, Debug)]
pub struct QueueEntry {
    /// The request this work belongs to.
    pub request: RequestId,
    /// The owning tenant.
    pub tenant: TenantId,
    /// The trace being executed.
    pub trace: Arc<Trace>,
    /// Position Mark: the `Accel` slot this entry is queued for.
    pub pm: PositionMark,
    /// Current payload size in bytes (inline up to 2 KB; the rest via
    /// the Memory Pointer).
    pub data_bytes: u64,
    /// Payload facts branch conditions test.
    pub flags: PayloadFlags,
    /// Virtual address of the payload buffer (drives the TLB).
    pub vaddr: u64,
    /// Soft deadline for this acceleration step, if the system runs
    /// SLOs.
    pub deadline: Option<SimTime>,
    /// Priority tag (higher runs first under the priority policy).
    pub priority: u8,
    /// When the entry entered the input queue (for queueing stats).
    pub enqueued_at: SimTime,
    /// The core that initiated the trace (gets the final notification).
    pub origin_core: usize,
    /// Opaque embedder bookkeeping (the machine model packs its
    /// request/call/segment/hop addressing here).
    pub tag: u64,
}

impl QueueEntry {
    /// Bytes held inline in the SRAM entry (the rest goes through the
    /// Memory Pointer).
    pub fn inline_bytes(&self, entry_capacity: u64) -> u64 {
        self.data_bytes.min(entry_capacity)
    }

    /// Bytes reached through the Memory Pointer.
    pub fn spilled_bytes(&self, entry_capacity: u64) -> u64 {
        self.data_bytes.saturating_sub(entry_capacity)
    }

    /// Whether the payload exceeds the inline capacity.
    pub fn uses_memory_pointer(&self, entry_capacity: u64) -> bool {
        self.data_bytes > entry_capacity
    }
}

/// Outcome of offering an entry to an input queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// Stored in an SRAM queue entry.
    Accepted,
    /// SRAM queue full; stored in the memory overflow area (dispatcher
    /// path only).
    Overflowed,
    /// Queue and overflow both full (or core-path queue full): the
    /// caller must fall back.
    Rejected,
}

/// A bounded SRAM input queue with a memory overflow area.
///
/// # Example
///
/// ```
/// use accelflow_accel::queue::{InputQueue, PushOutcome};
///
/// let mut q = InputQueue::new(2, 2);
/// assert_eq!(q.len(), 0);
/// assert!(q.has_space());
/// ```
#[derive(Clone, Debug)]
pub struct InputQueue {
    entries: VecDeque<QueueEntry>,
    capacity: usize,
    overflow: VecDeque<QueueEntry>,
    overflow_capacity: usize,
    overflow_count: u64,
    rejected_count: u64,
    accepted_count: u64,
}

impl InputQueue {
    /// Creates a queue with `capacity` SRAM entries and
    /// `overflow_capacity` overflow slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, overflow_capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        InputQueue {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            overflow: VecDeque::new(),
            overflow_capacity,
            overflow_count: 0,
            rejected_count: 0,
            accepted_count: 0,
        }
    }

    /// Entries currently in the SRAM queue.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the SRAM queue is empty (overflow may still hold work).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.overflow.is_empty()
    }

    /// Entries waiting in the overflow area.
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Whether the SRAM queue has a free entry.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// SRAM entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Overflow-area capacity.
    pub fn overflow_capacity(&self) -> usize {
        self.overflow_capacity
    }

    /// Total entries waiting (SRAM + overflow).
    pub fn backlog(&self) -> usize {
        self.entries.len() + self.overflow.len()
    }

    /// Core-path enqueue (the `Enqueue` instruction): fails when the
    /// SRAM queue is full — the core retries on another instance or
    /// falls back.
    pub fn try_enqueue(&mut self, entry: QueueEntry) -> Result<(), QueueEntry> {
        if self.has_space() {
            self.entries.push_back(entry);
            self.accepted_count += 1;
            Ok(())
        } else {
            self.rejected_count += 1;
            Err(entry)
        }
    }

    /// Dispatcher-path push: spills to the overflow area when the SRAM
    /// queue is full; rejects only when both are full.
    pub fn push(&mut self, entry: QueueEntry) -> PushOutcome {
        if self.has_space() && self.overflow.is_empty() {
            self.entries.push_back(entry);
            self.accepted_count += 1;
            PushOutcome::Accepted
        } else if self.overflow.len() < self.overflow_capacity {
            // Keep FIFO order: once anything overflowed, later arrivals
            // must queue behind it.
            self.overflow.push_back(entry);
            self.overflow_count += 1;
            PushOutcome::Overflowed
        } else {
            self.rejected_count += 1;
            PushOutcome::Rejected
        }
    }

    /// Removes the entry at `index` in the SRAM queue (the input
    /// dispatcher's pick), refilling one slot from the overflow area
    /// (paper §V-1: "as soon as a queue entry is moved into a PE, the
    /// dispatcher follows the Overflow pointer and moves an entry from
    /// there into the input queue").
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn take(&mut self, index: usize) -> QueueEntry {
        let entry = self.entries.remove(index).expect("take index in range");
        if let Some(spilled) = self.overflow.pop_front() {
            self.entries.push_back(spilled);
        }
        entry
    }

    /// Iterates over the SRAM entries (for scheduling decisions).
    pub fn iter(&self) -> impl Iterator<Item = &QueueEntry> {
        self.entries.iter()
    }

    /// Lifetime count of entries that landed in the overflow area.
    pub fn overflow_count(&self) -> u64 {
        self.overflow_count
    }

    /// Lifetime count of rejected offers.
    pub fn rejected_count(&self) -> u64 {
        self.rejected_count
    }

    /// Lifetime count of accepted entries (SRAM path).
    pub fn accepted_count(&self) -> u64 {
        self.accepted_count
    }
}

impl accelflow_sim::snapshot::Snapshot for RequestId {
    fn save(&self, w: &mut accelflow_sim::snapshot::SnapWriter) {
        w.u64(self.0);
    }
    fn load(
        r: &mut accelflow_sim::snapshot::SnapReader<'_>,
    ) -> Result<Self, accelflow_sim::snapshot::SnapshotError> {
        Ok(RequestId(r.u64()?))
    }
}

impl accelflow_sim::snapshot::Snapshot for TenantId {
    fn save(&self, w: &mut accelflow_sim::snapshot::SnapWriter) {
        w.u16(self.0);
    }
    fn load(
        r: &mut accelflow_sim::snapshot::SnapReader<'_>,
    ) -> Result<Self, accelflow_sim::snapshot::SnapshotError> {
        Ok(TenantId(r.u16()?))
    }
}

impl accelflow_sim::snapshot::Snapshot for QueueEntry {
    fn save(&self, w: &mut accelflow_sim::snapshot::SnapWriter) {
        self.request.save(w);
        self.tenant.save(w);
        self.trace.save(w);
        self.pm.save(w);
        w.u64(self.data_bytes);
        self.flags.save(w);
        w.u64(self.vaddr);
        self.deadline.save(w);
        w.u8(self.priority);
        self.enqueued_at.save(w);
        w.usize(self.origin_core);
        w.u64(self.tag);
    }
    fn load(
        r: &mut accelflow_sim::snapshot::SnapReader<'_>,
    ) -> Result<Self, accelflow_sim::snapshot::SnapshotError> {
        Ok(QueueEntry {
            request: RequestId::load(r)?,
            tenant: TenantId::load(r)?,
            trace: Arc::load(r)?,
            pm: PositionMark::load(r)?,
            data_bytes: r.u64()?,
            flags: PayloadFlags::load(r)?,
            vaddr: r.u64()?,
            deadline: Option::load(r)?,
            priority: r.u8()?,
            enqueued_at: SimTime::load(r)?,
            origin_core: r.usize()?,
            tag: r.u64()?,
        })
    }
}

impl accelflow_sim::snapshot::Snapshot for InputQueue {
    fn save(&self, w: &mut accelflow_sim::snapshot::SnapWriter) {
        w.usize(self.capacity);
        w.usize(self.overflow_capacity);
        self.entries.save(w);
        self.overflow.save(w);
        w.u64(self.overflow_count);
        w.u64(self.rejected_count);
        w.u64(self.accepted_count);
    }
    fn load(
        r: &mut accelflow_sim::snapshot::SnapReader<'_>,
    ) -> Result<Self, accelflow_sim::snapshot::SnapshotError> {
        use accelflow_sim::snapshot::SnapshotError;
        let capacity = r.usize()?;
        let overflow_capacity = r.usize()?;
        if capacity == 0 {
            return Err(SnapshotError::Corrupt(
                "zero-capacity input queue".to_string(),
            ));
        }
        let entries = VecDeque::<QueueEntry>::load(r)?;
        let overflow = VecDeque::<QueueEntry>::load(r)?;
        if entries.len() > capacity || overflow.len() > overflow_capacity {
            return Err(SnapshotError::Corrupt(format!(
                "input queue occupancy {}/{} exceeds capacity {capacity}/{overflow_capacity}",
                entries.len(),
                overflow.len()
            )));
        }
        Ok(InputQueue {
            entries,
            capacity,
            overflow,
            overflow_capacity,
            overflow_count: r.u64()?,
            rejected_count: r.u64()?,
            accepted_count: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelflow_trace::ir::Slot;
    use accelflow_trace::kind::AccelKind;

    fn entry(req: u64) -> QueueEntry {
        QueueEntry {
            request: RequestId(req),
            tenant: TenantId(0),
            trace: Arc::new(Trace::new("t", vec![Slot::Accel(AccelKind::Tcp)])),
            pm: PositionMark(0),
            data_bytes: 1024,
            flags: PayloadFlags::default(),
            vaddr: 0x1000 * req,
            deadline: None,
            priority: 0,
            enqueued_at: SimTime::ZERO,
            origin_core: 0,
            tag: 0,
        }
    }

    #[test]
    fn core_enqueue_fails_when_full() {
        let mut q = InputQueue::new(2, 4);
        assert!(q.try_enqueue(entry(1)).is_ok());
        assert!(q.try_enqueue(entry(2)).is_ok());
        let back = q.try_enqueue(entry(3)).unwrap_err();
        assert_eq!(back.request, RequestId(3));
        assert_eq!(q.rejected_count(), 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn dispatcher_push_overflows_then_rejects() {
        let mut q = InputQueue::new(1, 2);
        assert_eq!(q.push(entry(1)), PushOutcome::Accepted);
        assert_eq!(q.push(entry(2)), PushOutcome::Overflowed);
        assert_eq!(q.push(entry(3)), PushOutcome::Overflowed);
        assert_eq!(q.push(entry(4)), PushOutcome::Rejected);
        assert_eq!(q.overflow_count(), 2);
        assert_eq!(q.backlog(), 3);
    }

    #[test]
    fn take_refills_from_overflow_in_fifo_order() {
        let mut q = InputQueue::new(1, 2);
        q.push(entry(1));
        q.push(entry(2));
        q.push(entry(3));
        let first = q.take(0);
        assert_eq!(first.request, RequestId(1));
        // Overflowed entry 2 moved into SRAM.
        assert_eq!(q.len(), 1);
        assert_eq!(q.overflow_len(), 1);
        assert_eq!(q.take(0).request, RequestId(2));
        assert_eq!(q.take(0).request, RequestId(3));
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_preserved_across_overflow() {
        // Once something overflowed, a later push must not jump the line
        // even if an SRAM slot happens to be free.
        let mut q = InputQueue::new(2, 4);
        q.push(entry(1));
        q.push(entry(2));
        q.push(entry(3)); // overflow
        q.take(0); // frees an SRAM slot and pulls 3 in — queue full again
        assert_eq!(q.push(entry(4)), PushOutcome::Overflowed);
        let order: Vec<u64> = (0..3).map(|_| q.take(0).request.0).collect();
        assert_eq!(order, vec![2, 3, 4]);
    }

    #[test]
    fn memory_pointer_fields() {
        let mut e = entry(1);
        e.data_bytes = 5000;
        assert!(e.uses_memory_pointer(2048));
        assert_eq!(e.inline_bytes(2048), 2048);
        assert_eq!(e.spilled_bytes(2048), 2952);
        e.data_bytes = 100;
        assert!(!e.uses_memory_pointer(2048));
        assert_eq!(e.spilled_bytes(2048), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = InputQueue::new(0, 0);
    }
}
