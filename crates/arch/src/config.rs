//! Architectural parameters (paper Table III) and CPU-generation
//! scaling (paper Fig 20).

use accelflow_sim::time::{Frequency, SimDuration};

/// Intel CPU generations modeled for the Fig 20 sensitivity study.
///
/// The paper models Haswell through Emerald Rapids. We capture each
/// generation as a frequency plus a single-thread performance factor
/// applied to *application-logic* cycles. Datacenter-tax operations are
/// memory/branch-bound and benefit far less from wider cores (this is
/// the paper's §VII-C4 observation), so tax cycles get a damped factor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CpuGeneration {
    /// 2013-class core (narrow issue, small ROB).
    Haswell,
    /// 2015-class core.
    Skylake,
    /// The paper's baseline: Sunny Cove (Ice Lake server).
    IceLake,
    /// 2023-class core (Golden Cove).
    SapphireRapids,
    /// 2023/24-class core (Raptor Cove).
    EmeraldRapids,
}

impl CpuGeneration {
    /// All generations, oldest first (the Fig 20 x-axis).
    pub const ALL: [CpuGeneration; 5] = [
        CpuGeneration::Haswell,
        CpuGeneration::Skylake,
        CpuGeneration::IceLake,
        CpuGeneration::SapphireRapids,
        CpuGeneration::EmeraldRapids,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CpuGeneration::Haswell => "Haswell",
            CpuGeneration::Skylake => "Skylake",
            CpuGeneration::IceLake => "IceLake",
            CpuGeneration::SapphireRapids => "SapphireRapids",
            CpuGeneration::EmeraldRapids => "EmeraldRapids",
        }
    }

    /// Single-thread speedup of application logic relative to IceLake.
    ///
    /// Synthesized from public SPECrate-class deltas between the
    /// generations; only the *relative ordering and rough magnitude*
    /// matter for Fig 20's shape.
    pub fn app_logic_factor(self) -> f64 {
        match self {
            CpuGeneration::Haswell => 0.68,
            CpuGeneration::Skylake => 0.84,
            CpuGeneration::IceLake => 1.00,
            CpuGeneration::SapphireRapids => 1.18,
            CpuGeneration::EmeraldRapids => 1.27,
        }
    }

    /// Single-thread speedup of datacenter-tax code relative to IceLake.
    ///
    /// Tax operations are dominated by memory movement, hashing, and
    /// branchy parsing; newer cores help them much less (§VII-C4: "newer
    /// processors ... offer less benefit to datacenter tax operations").
    pub fn tax_factor(self) -> f64 {
        match self {
            CpuGeneration::Haswell => 0.85,
            CpuGeneration::Skylake => 0.93,
            CpuGeneration::IceLake => 1.00,
            CpuGeneration::SapphireRapids => 1.06,
            CpuGeneration::EmeraldRapids => 1.09,
        }
    }
}

/// The full architectural parameter set (paper Table III plus the
/// orchestration-cost constants given in the text).
///
/// # Example
///
/// ```
/// use accelflow_arch::config::ArchConfig;
///
/// let cfg = ArchConfig::icelake();
/// assert_eq!(cfg.cores, 36);
/// assert_eq!(cfg.pes_per_accelerator, 8);
/// assert_eq!(cfg.input_queue_entries, 64);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ArchConfig {
    // --- Processor parameters ---
    /// Number of CPU cores (paper: 36).
    pub cores: usize,
    /// Core clock (paper: 2.4 GHz).
    pub core_clock: Frequency,
    /// CPU generation (scales app-logic/tax cycle counts; Fig 20).
    pub generation: CpuGeneration,

    // --- AccelFlow parameters ---
    /// Entries in each accelerator input queue (paper: 64).
    pub input_queue_entries: usize,
    /// Entries in each accelerator output queue (paper: 64).
    pub output_queue_entries: usize,
    /// Inline data capacity of a queue entry in bytes (paper: 2 KB).
    pub queue_entry_inline_bytes: u64,
    /// Number of shared A-DMA engines (paper: 10).
    pub dma_engines: usize,
    /// Processing elements per accelerator (paper: 8; Fig 19 sweeps 2/4/8).
    pub pes_per_accelerator: usize,
    /// Scratchpad bytes per PE (paper: 64 KB).
    pub scratchpad_bytes: u64,
    /// Queue→scratchpad transfer latency (paper: 10 ns).
    pub queue_to_scratchpad_latency: SimDuration,
    /// Queue→scratchpad bandwidth in bytes/second (paper: 100 GB/s).
    pub queue_to_scratchpad_bw: f64,
    /// Accelerator→core user-level notification latency (paper: avg 80
    /// cycles).
    pub notification_cycles: f64,
    /// Intra-chiplet mesh hop latency in cycles (paper: 3).
    pub mesh_hop_cycles: f64,
    /// Intra-chiplet mesh link width in bytes (paper: 16 B).
    pub mesh_link_bytes: u64,
    /// Inter-chiplet link latency in cycles (paper: 60; §VII-C2 sweeps
    /// 20–100).
    pub inter_chiplet_cycles: f64,
    /// Inter-chiplet link bandwidth in bytes/second. Table III lists
    /// narrow per-link bandwidth (1 Gb/s/link class, after CDPU); we
    /// use an effective 2 GB/s per message path, which makes chiplet
    /// crossings µs-scale for 2 KB payloads — the effect Fig 18
    /// measures.
    pub inter_chiplet_bw: f64,
    /// Overflow area capacity, in entries, per input queue.
    pub overflow_entries: usize,

    // --- Translation ---
    /// Per-accelerator TLB entries (ATS devices keep a large IOTLB;
    /// Table III's L2 TLB is 2048 entries).
    pub accel_tlb_entries: usize,
    /// TLB associativity.
    pub accel_tlb_ways: usize,
    /// TLB hit latency in cycles (paper L1 TLB: 2-cycle round trip).
    pub tlb_hit_cycles: f64,
    /// IOMMU page-walk latency in cycles on TLB miss (radix walk; a few
    /// dependent memory accesses).
    pub iommu_walk_cycles: f64,
    /// Page size in bytes.
    pub page_bytes: u64,

    // --- Memory hierarchy ---
    /// LLC round-trip latency in cycles (paper: 36 per slice).
    pub llc_latency_cycles: f64,
    /// Main-memory round-trip latency in cycles.
    pub memory_latency_cycles: f64,
    /// Probability an accelerator/core payload access hits in the LLC.
    pub llc_hit_ratio: f64,
    /// Total memory bandwidth in bytes/second (paper: 4 controllers ×
    /// 102.4 GB/s).
    pub memory_bw: f64,

    // --- Orchestration costs (from the paper's text) ---
    /// Time for an accelerator completion interrupt to reach and be
    /// processed by a CPU core (CPU-Centric baseline; µs-scale).
    pub cpu_interrupt_overhead: SimDuration,
    /// CPU-side cost to prepare and submit one accelerator invocation.
    pub cpu_submit_overhead: SimDuration,
    /// RELIEF manager *occupancy* per accelerator completion: the
    /// serialized portion of the manager's work. The paper's §VII-A1
    /// quotes ≈1.5 µs to "get interrupted plus process"; most of that
    /// is interrupt delivery latency (pipelined across requests) — see
    /// `manager_latency` — while the serialized decision work is a few
    /// hundred ns. The manager saturates at 1/occupancy completions/s.
    pub manager_service_time: SimDuration,
    /// RELIEF manager interrupt-delivery + response latency added to
    /// every hop (non-occupying; the latency half of §VII-A1's 1.5 µs).
    pub manager_latency: SimDuration,
    /// Manager occupancy when a trace *falls back* to the manager for
    /// an operation outside its streamlined scheduling loop (branch
    /// resolution or data transformation in the Fig 13 ablation rungs,
    /// Memory-Pointer payload handling): a full interrupt + handling
    /// round (§VII-A1's 1.5 µs class of event).
    pub manager_fallback_time: SimDuration,
    /// Cohort's shared-memory software-queue handoff cost on the core.
    pub cohort_queue_overhead: SimDuration,
    /// Dispatcher clock period (dispatchers are small FSMs executing
    /// RISC-like glue instructions against SRAM queue entries; we clock
    /// them at a quarter of the core frequency, ~600 MHz).
    pub dispatcher_cycle: SimDuration,
    /// Core cycles for the user-mode `Enqueue` instruction plus A-DMA
    /// programming (AccelFlow's cheap submission path, §IV-A).
    pub enqueue_cycles: f64,
    /// Latency of one ATM read (on-chip SRAM).
    pub atm_read_latency: SimDuration,
    /// Core cycles to pick up a user-level completion notification
    /// (poll the flag, read the result pointer).
    pub pickup_cycles: f64,
    /// OS handling time for a page fault or other accelerator
    /// exception (the accelerator stops and interrupts a core, §IV-A).
    pub exception_handling: SimDuration,
}

impl ArchConfig {
    /// The paper's baseline configuration (Table III, IceLake-like).
    pub fn icelake() -> Self {
        let clock = Frequency::from_ghz(2.4);
        ArchConfig {
            cores: 36,
            core_clock: clock,
            generation: CpuGeneration::IceLake,

            input_queue_entries: 64,
            output_queue_entries: 64,
            queue_entry_inline_bytes: 2048,
            dma_engines: 10,
            pes_per_accelerator: 8,
            scratchpad_bytes: 64 * 1024,
            queue_to_scratchpad_latency: SimDuration::from_nanos(10),
            queue_to_scratchpad_bw: 100e9,
            notification_cycles: 80.0,
            mesh_hop_cycles: 3.0,
            mesh_link_bytes: 16,
            inter_chiplet_cycles: 60.0,
            inter_chiplet_bw: 2e9,
            overflow_entries: 256,

            accel_tlb_entries: 2048,
            accel_tlb_ways: 8,
            tlb_hit_cycles: 2.0,
            iommu_walk_cycles: 400.0,
            page_bytes: 4096,

            llc_latency_cycles: 36.0,
            memory_latency_cycles: 220.0,
            llc_hit_ratio: 0.85,
            memory_bw: 4.0 * 102.4e9,

            cpu_interrupt_overhead: SimDuration::from_nanos(3400),
            cpu_submit_overhead: SimDuration::from_nanos(1200),
            manager_service_time: SimDuration::from_nanos(110),
            manager_latency: SimDuration::from_nanos(1200),
            manager_fallback_time: SimDuration::from_nanos(270),
            cohort_queue_overhead: SimDuration::from_nanos(3900),
            dispatcher_cycle: clock.cycles(4.0),
            enqueue_cycles: 100.0,
            atm_read_latency: SimDuration::from_nanos(15),
            pickup_cycles: 250.0,
            exception_handling: SimDuration::from_micros(8),
        }
    }

    /// Baseline configuration for a given CPU generation (Fig 20): same
    /// uncore, different core performance factors.
    pub fn for_generation(generation: CpuGeneration) -> Self {
        ArchConfig {
            generation,
            ..Self::icelake()
        }
    }

    /// Duration of `n` core cycles.
    pub fn cycles(&self, n: f64) -> SimDuration {
        self.core_clock.cycles(n)
    }

    /// The accelerator→core notification latency.
    pub fn notification_latency(&self) -> SimDuration {
        self.cycles(self.notification_cycles)
    }

    /// Time to move `bytes` from a queue into a PE scratchpad
    /// (paper: 10 ns latency, 100 GB/s, pipelined).
    pub fn queue_to_scratchpad(&self, bytes: u64) -> SimDuration {
        self.queue_to_scratchpad_latency
            + SimDuration::from_secs_f64(bytes as f64 / self.queue_to_scratchpad_bw)
    }

    /// Expected latency for a payload access of `bytes` through the
    /// coherent LLC (hit) or memory (miss), serialized at line
    /// granularity but overlapped (we charge one access latency plus
    /// bandwidth-limited streaming).
    pub fn payload_access(&self, bytes: u64) -> SimDuration {
        let hit = self.llc_hit_ratio;
        let lat_cycles = hit * self.llc_latency_cycles + (1.0 - hit) * self.memory_latency_cycles;
        let stream = SimDuration::from_secs_f64(bytes as f64 / self.memory_bw);
        self.cycles(lat_cycles) + stream
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("config needs at least one core".into());
        }
        if self.pes_per_accelerator == 0 {
            return Err("config needs at least one PE per accelerator".into());
        }
        if self.dma_engines == 0 {
            return Err("config needs at least one DMA engine".into());
        }
        if self.input_queue_entries == 0 || self.output_queue_entries == 0 {
            return Err("queues need at least one entry".into());
        }
        if !(0.0..=1.0).contains(&self.llc_hit_ratio) {
            return Err("llc_hit_ratio must be within [0, 1]".into());
        }
        if self.accel_tlb_ways == 0 || !self.accel_tlb_entries.is_multiple_of(self.accel_tlb_ways) {
            return Err("TLB entries must be divisible by associativity".into());
        }
        if !self.page_bytes.is_power_of_two() {
            return Err("page size must be a power of two".into());
        }
        Ok(())
    }
}

impl Default for ArchConfig {
    fn default() -> Self {
        Self::icelake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_iii() {
        let cfg = ArchConfig::icelake();
        assert_eq!(cfg.cores, 36);
        assert!((cfg.core_clock.as_ghz() - 2.4).abs() < 1e-9);
        assert_eq!(cfg.input_queue_entries, 64);
        assert_eq!(cfg.output_queue_entries, 64);
        assert_eq!(cfg.queue_entry_inline_bytes, 2048);
        assert_eq!(cfg.dma_engines, 10);
        assert_eq!(cfg.pes_per_accelerator, 8);
        assert_eq!(cfg.scratchpad_bytes, 64 * 1024);
        assert_eq!(cfg.mesh_hop_cycles, 3.0);
        assert_eq!(cfg.inter_chiplet_cycles, 60.0);
        assert_eq!(cfg.notification_cycles, 80.0);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn generations_are_monotonic() {
        let mut last_app = 0.0;
        let mut last_tax = 0.0;
        for g in CpuGeneration::ALL {
            assert!(g.app_logic_factor() > last_app, "{:?}", g);
            assert!(g.tax_factor() > last_tax, "{:?}", g);
            last_app = g.app_logic_factor();
            last_tax = g.tax_factor();
        }
        // Tax benefits less than app logic from newer cores.
        for g in CpuGeneration::ALL {
            if g > CpuGeneration::IceLake {
                assert!(g.tax_factor() < g.app_logic_factor());
            }
            if g < CpuGeneration::IceLake {
                assert!(g.tax_factor() > g.app_logic_factor());
            }
        }
    }

    #[test]
    fn queue_to_scratchpad_matches_paper_example() {
        let cfg = ArchConfig::icelake();
        // Paper: "10 ns latency and 100 GB/s BW for 1KB msgs".
        let t = cfg.queue_to_scratchpad(1024);
        assert!((t.as_nanos_f64() - 20.24).abs() < 0.5, "{t}");
    }

    #[test]
    fn payload_access_scales_with_size() {
        let cfg = ArchConfig::icelake();
        let small = cfg.payload_access(64);
        let large = cfg.payload_access(64 * 1024);
        assert!(large > small);
        // Latency floor: at least an LLC access.
        assert!(small >= cfg.cycles(cfg.llc_latency_cycles) * 0.8);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = ArchConfig::icelake();
        cfg.llc_hit_ratio = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = ArchConfig::icelake();
        cfg.accel_tlb_ways = 3; // 2048 % 3 != 0
        assert!(cfg.validate().is_err());
        let mut cfg = ArchConfig::icelake();
        cfg.page_bytes = 3000;
        assert!(cfg.validate().is_err());
        let mut cfg = ArchConfig::icelake();
        cfg.cores = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn generation_config_only_changes_generation() {
        let a = ArchConfig::for_generation(CpuGeneration::Haswell);
        assert_eq!(a.generation, CpuGeneration::Haswell);
        assert_eq!(a.cores, 36);
        assert_eq!(CpuGeneration::Haswell.name(), "Haswell");
    }
}
