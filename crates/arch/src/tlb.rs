//! Address-translation caches for the accelerators (paper §IV-A/§V-3).
//!
//! Accelerators operate on virtual addresses (Intel SVM-style) and use
//! PCIe ATS: each accelerator has a TLB shared with its dispatchers; a
//! miss triggers an IOMMU radix page walk. This module implements a
//! set-associative, LRU TLB keyed by `(process, virtual page)`.

use accelflow_sim::time::SimDuration;

use crate::config::ArchConfig;

/// A process (address-space) identifier, as carried by ATS requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub u32);

/// Result of a TLB access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbAccess {
    /// Whether the translation was cached.
    pub hit: bool,
    /// Latency charged for this access (hit latency, or hit latency
    /// plus the IOMMU walk).
    pub latency: SimDuration,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct TlbTag {
    pid: ProcessId,
    page: u64,
    /// LRU stamp: larger is more recent.
    stamp: u64,
}

/// A set-associative, LRU address-translation cache with an IOMMU
/// page-walk penalty on miss.
///
/// # Example
///
/// ```
/// use accelflow_arch::config::ArchConfig;
/// use accelflow_arch::tlb::{ProcessId, Tlb};
///
/// let cfg = ArchConfig::icelake();
/// let mut tlb = Tlb::new(&cfg);
/// let pid = ProcessId(1);
/// let miss = tlb.translate(pid, 0x7f00_0000_0000);
/// let hit = tlb.translate(pid, 0x7f00_0000_0000);
/// assert!(!miss.hit && hit.hit);
/// assert!(miss.latency > hit.latency);
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    /// All tags in one flat arena, `ways` slots per set: set `s`
    /// occupies `tags[s * ways .. s * ways + lens[s]]`. One contiguous
    /// allocation instead of a `Vec` per set keeps the per-translation
    /// probe a single indexed slice scan.
    tags: Vec<TlbTag>,
    /// Occupied slots per set.
    lens: Vec<u16>,
    n_sets: usize,
    /// `n_sets - 1` when the set count is a power of two (the common
    /// geometry): index extraction is then a mask instead of a divide.
    set_mask: Option<usize>,
    ways: usize,
    page_shift: u32,
    hit_latency: SimDuration,
    walk_latency: SimDuration,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with the configured geometry and latencies.
    /// Degenerate geometries (zero ways or fewer entries than ways)
    /// are clamped to a 1-way, 1-set cache rather than producing a
    /// structure whose eviction path would panic on an empty set.
    pub fn new(cfg: &ArchConfig) -> Self {
        let ways = cfg.accel_tlb_ways.max(1);
        let sets = (cfg.accel_tlb_entries / ways).max(1);
        let empty = TlbTag {
            pid: ProcessId(0),
            page: 0,
            stamp: 0,
        };
        Tlb {
            tags: vec![empty; sets * ways],
            lens: vec![0; sets],
            n_sets: sets,
            set_mask: sets.is_power_of_two().then(|| sets - 1),
            ways,
            page_shift: cfg.page_bytes.trailing_zeros(),
            hit_latency: cfg.cycles(cfg.tlb_hit_cycles),
            walk_latency: cfg.cycles(cfg.iommu_walk_cycles),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Set index for `(pid, page)`. Folds high page bits into the
    /// index: buffer arenas sit at large power-of-two strides, which a
    /// plain modulo would alias onto a single set.
    #[inline]
    fn set_index(&self, pid: ProcessId, page: u64) -> usize {
        let mixed = page ^ (page >> 8) ^ (page >> 16) ^ ((pid.0 as u64) << 4);
        match self.set_mask {
            Some(mask) => (mixed as usize) & mask,
            None => (mixed as usize) % self.n_sets,
        }
    }

    /// Translates the page containing `vaddr` for `pid`, updating LRU
    /// state and filling on miss.
    pub fn translate(&mut self, pid: ProcessId, vaddr: u64) -> TlbAccess {
        self.translate_page(pid, vaddr >> self.page_shift)
    }

    fn translate_page(&mut self, pid: ProcessId, page: u64) -> TlbAccess {
        let set_idx = self.set_index(pid, page);
        self.clock += 1;
        let stamp = self.clock;
        let base = set_idx * self.ways;
        let len = self.lens[set_idx] as usize;
        let set = &mut self.tags[base..base + len];
        if let Some(tag) = set.iter_mut().find(|t| t.pid == pid && t.page == page) {
            tag.stamp = stamp;
            self.hits += 1;
            return TlbAccess {
                hit: true,
                latency: self.hit_latency,
            };
        }
        self.misses += 1;
        if len >= self.ways {
            // Evict least recently used: the last slot fills the LRU
            // hole and the new tag takes the freed last slot.
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| t.stamp)
                .map(|(i, _)| i)
                .expect("set is non-empty");
            set[lru] = set[len - 1];
            set[len - 1] = TlbTag { pid, page, stamp };
        } else {
            self.tags[base + len] = TlbTag { pid, page, stamp };
            self.lens[set_idx] = (len + 1) as u16;
        }
        TlbAccess {
            hit: false,
            latency: self.hit_latency + self.walk_latency,
        }
    }

    /// Translates every page overlapped by `[vaddr, vaddr + bytes)`,
    /// returning the total latency and the number of misses.
    pub fn translate_range(
        &mut self,
        pid: ProcessId,
        vaddr: u64,
        bytes: u64,
    ) -> (SimDuration, u32) {
        let first = vaddr >> self.page_shift;
        let last = (vaddr + bytes.max(1) - 1) >> self.page_shift;
        let mut total = SimDuration::ZERO;
        let mut misses = 0;
        for page in first..=last {
            let a = self.translate_page(pid, page);
            total += a.latency;
            if !a.hit {
                misses += 1;
            }
        }
        (total, misses)
    }

    /// Invalidates all translations for `pid` (e.g. on context switch
    /// or tenant change).
    pub fn flush_process(&mut self, pid: ProcessId) {
        for s in 0..self.n_sets {
            let base = s * self.ways;
            let len = self.lens[s] as usize;
            let mut keep = 0;
            for i in 0..len {
                let t = self.tags[base + i];
                if t.pid != pid {
                    self.tags[base + keep] = t;
                    keep += 1;
                }
            }
            self.lens[s] = keep as u16;
        }
    }

    /// Invalidates every translation — a TLB shootdown: the OS
    /// broadcasts invalidation IPIs to all address spaces at once (page
    /// migration, memory reclaim). Returns the number of entries
    /// dropped; subsequent translations pay the IOMMU walk again. The
    /// lifetime hit/miss counters are unaffected.
    pub fn flush_all(&mut self) -> u64 {
        let mut dropped = 0;
        for len in &mut self.lens {
            dropped += u64::from(*len);
            *len = 0;
        }
        dropped
    }

    /// Lifetime hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime hit ratio (1.0 when never accessed).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl accelflow_sim::snapshot::Snapshot for Tlb {
    /// Canonical form: geometry + latencies + counters, then per set a
    /// `u16` occupancy and only the occupied tags. Unoccupied arena
    /// slots carry stale garbage that never affects behavior, so
    /// skipping them keeps the bytes canonical (identical state ⇒
    /// identical bytes). `set_mask` is derived from the set count and
    /// recomputed on load.
    fn save(&self, w: &mut accelflow_sim::snapshot::SnapWriter) {
        w.usize(self.n_sets);
        w.usize(self.ways);
        w.u32(self.page_shift);
        self.hit_latency.save(w);
        self.walk_latency.save(w);
        w.u64(self.clock);
        w.u64(self.hits);
        w.u64(self.misses);
        for s in 0..self.n_sets {
            let len = self.lens[s];
            w.u16(len);
            let base = s * self.ways;
            for tag in &self.tags[base..base + len as usize] {
                w.u32(tag.pid.0);
                w.u64(tag.page);
                w.u64(tag.stamp);
            }
        }
    }
    fn load(
        r: &mut accelflow_sim::snapshot::SnapReader<'_>,
    ) -> Result<Self, accelflow_sim::snapshot::SnapshotError> {
        use accelflow_sim::snapshot::SnapshotError;
        let n_sets = r.usize()?;
        let ways = r.usize()?;
        if n_sets == 0 || ways == 0 {
            return Err(SnapshotError::Corrupt(format!(
                "degenerate TLB geometry: {n_sets} sets x {ways} ways"
            )));
        }
        let page_shift = r.u32()?;
        let hit_latency = SimDuration::load(r)?;
        let walk_latency = SimDuration::load(r)?;
        let clock = r.u64()?;
        let hits = r.u64()?;
        let misses = r.u64()?;
        let empty = TlbTag {
            pid: ProcessId(0),
            page: 0,
            stamp: 0,
        };
        let mut tags = vec![empty; n_sets * ways];
        let mut lens = vec![0u16; n_sets];
        for s in 0..n_sets {
            let len = r.u16()?;
            if len as usize > ways {
                return Err(SnapshotError::Corrupt(format!(
                    "TLB set {s} occupancy {len} exceeds {ways} ways"
                )));
            }
            lens[s] = len;
            let base = s * ways;
            for i in 0..len as usize {
                tags[base + i] = TlbTag {
                    pid: ProcessId(r.u32()?),
                    page: r.u64()?,
                    stamp: r.u64()?,
                };
            }
        }
        Ok(Tlb {
            tags,
            lens,
            n_sets,
            set_mask: n_sets.is_power_of_two().then(|| n_sets - 1),
            ways,
            page_shift,
            hit_latency,
            walk_latency,
            clock,
            hits,
            misses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb() -> Tlb {
        Tlb::new(&ArchConfig::icelake())
    }

    #[test]
    fn miss_then_hit() {
        let mut t = tlb();
        let pid = ProcessId(7);
        assert!(!t.translate(pid, 0x1000).hit);
        assert!(t.translate(pid, 0x1000).hit);
        assert!(t.translate(pid, 0x1fff).hit); // same page
        assert!(!t.translate(pid, 0x2000).hit); // next page
        assert_eq!(t.hits(), 2);
        assert_eq!(t.misses(), 2);
        assert!((t.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn processes_are_isolated() {
        let mut t = tlb();
        t.translate(ProcessId(1), 0x5000);
        assert!(!t.translate(ProcessId(2), 0x5000).hit);
        assert!(t.translate(ProcessId(1), 0x5000).hit);
    }

    #[test]
    fn lru_eviction_within_set() {
        let cfg = ArchConfig::icelake();
        let mut t = Tlb::new(&cfg);
        let pid = ProcessId(1);
        let sets = cfg.accel_tlb_entries / cfg.accel_tlb_ways;
        // Collect ways+1 pages that collide onto one set under the
        // mixed index.
        let set_of = |page: u64| {
            let mixed = page ^ (page >> 8) ^ (page >> 16) ^ ((pid.0 as u64) << 4);
            (mixed as usize) % sets
        };
        let target = set_of(1);
        let colliding: Vec<u64> = (1u64..1_000_000)
            .filter(|&p| set_of(p) == target)
            .take(cfg.accel_tlb_ways + 1)
            .collect();
        assert_eq!(colliding.len(), cfg.accel_tlb_ways + 1);
        let vaddr = |i: usize| colliding[i] << 12;
        for i in 0..cfg.accel_tlb_ways {
            t.translate(pid, vaddr(i));
        }
        // Touch entry 0 so entry 1 becomes LRU, then insert a new page.
        assert!(t.translate(pid, vaddr(0)).hit);
        t.translate(pid, vaddr(cfg.accel_tlb_ways));
        assert!(t.translate(pid, vaddr(0)).hit, "recently used survived");
        assert!(!t.translate(pid, vaddr(1)).hit, "LRU page evicted");
    }

    #[test]
    fn range_translation_counts_pages() {
        let mut t = tlb();
        let pid = ProcessId(3);
        // 10 KB spanning pages 0..2 (3 pages) starting at page boundary.
        let (lat, misses) = t.translate_range(pid, 0, 10 * 1024);
        assert_eq!(misses, 3);
        assert!(lat > SimDuration::ZERO);
        let (_, misses2) = t.translate_range(pid, 0, 10 * 1024);
        assert_eq!(misses2, 0);
    }

    #[test]
    fn flush_clears_only_target_process() {
        let mut t = tlb();
        t.translate(ProcessId(1), 0x1000);
        t.translate(ProcessId(2), 0x1000);
        t.flush_process(ProcessId(1));
        assert!(!t.translate(ProcessId(1), 0x1000).hit);
        assert!(t.translate(ProcessId(2), 0x1000).hit);
    }

    #[test]
    fn degenerate_geometries_never_panic() {
        // Regression: ways == 0 used to divide by zero in `new`, and a
        // ways-0 TLB that survived construction hit the
        // `.expect("set is non-empty")` eviction on its first miss.
        for ways in 0..4usize {
            for entries in 0..8usize {
                let mut cfg = ArchConfig::icelake();
                cfg.accel_tlb_ways = ways;
                cfg.accel_tlb_entries = entries;
                let mut t = Tlb::new(&cfg);
                let pid = ProcessId(1);
                // Enough distinct pages to force evictions whatever the
                // clamped geometry came out as.
                for page in 0..32u64 {
                    let _ = t.translate(pid, page << 12);
                }
                assert_eq!(t.hits() + t.misses(), 32, "ways={ways} entries={entries}");
            }
        }
        // A 1-entry clamp still caches: re-touching the same page hits.
        let mut cfg = ArchConfig::icelake();
        cfg.accel_tlb_ways = 0;
        cfg.accel_tlb_entries = 0;
        let mut t = Tlb::new(&cfg);
        assert!(!t.translate(ProcessId(2), 0x1000).hit);
        assert!(t.translate(ProcessId(2), 0x1000).hit);
    }

    #[test]
    fn flush_all_drops_every_process_but_keeps_counters() {
        let mut t = tlb();
        t.translate(ProcessId(1), 0x1000);
        t.translate(ProcessId(2), 0x2000);
        t.translate(ProcessId(2), 0x2000); // one hit
        let (hits, misses) = (t.hits(), t.misses());
        assert_eq!(t.flush_all(), 2);
        assert_eq!((t.hits(), t.misses()), (hits, misses));
        assert!(!t.translate(ProcessId(1), 0x1000).hit);
        assert!(!t.translate(ProcessId(2), 0x2000).hit);
        assert_eq!(t.flush_all(), 2);
    }

    #[test]
    fn zero_byte_range_touches_one_page() {
        let mut t = tlb();
        let (_, misses) = t.translate_range(ProcessId(1), 0x123, 0);
        assert_eq!(misses, 1);
    }

    #[test]
    fn snapshot_roundtrip_preserves_residency_and_lru() {
        use accelflow_sim::snapshot::{SnapReader, SnapWriter, Snapshot};
        let mut t = tlb();
        for page in 0..40u64 {
            t.translate(ProcessId((page % 3) as u32), page << 12);
        }
        t.translate(ProcessId(0), 0); // a hit to split the counters
        let mut w = SnapWriter::new();
        t.save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = Tlb::load(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!((restored.hits(), restored.misses()), (t.hits(), t.misses()));
        // Behavioral equivalence: the same probe sequence produces the
        // same hit/miss outcomes on both copies (LRU stamps included).
        for page in 0..60u64 {
            let a = t.translate(ProcessId(1), page << 12);
            let b = restored.translate(ProcessId(1), page << 12);
            assert_eq!(a, b, "page {page}");
        }
    }
}
