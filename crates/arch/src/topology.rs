//! Chiplet layouts and on-package placement.
//!
//! The baseline processor (paper Fig 6) has two chiplets: one with the
//! 36 cores (plus the load balancer, which is tightly coupled to the
//! cores) and one with the remaining eight accelerators. The Fig 18
//! sensitivity study re-partitions the accelerators into 1, 2, 3, 4, or
//! 6 chiplets. This module models placement generically: hardware units
//! are opaque [`UnitId`]s placed on per-chiplet 2D meshes; the crate
//! that knows about accelerator kinds maps kinds to units.

use std::fmt;

/// Identifies a chiplet on the package.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChipletId(pub u8);

/// Identifies a placed hardware unit (an accelerator instance).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UnitId(pub u8);

/// A communication endpoint on the package: the core complex or a
/// placed unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// The CPU cores (and their caches), treated as one mesh stop on
    /// the core chiplet.
    Cores,
    /// A placed hardware unit.
    Unit(UnitId),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Cores => write!(f, "cores"),
            Endpoint::Unit(u) => write!(f, "unit{}", u.0),
        }
    }
}

#[derive(Clone, Debug)]
struct Placement {
    chiplet: ChipletId,
    x: u8,
    y: u8,
}

/// The placement of the core complex and all units onto chiplets, with
/// mesh coordinates within each chiplet.
///
/// # Example
///
/// ```
/// use accelflow_arch::topology::{ChipletLayout, Endpoint, UnitId};
///
/// // Core chiplet holds the cores and unit 8 (the load balancer);
/// // the other chiplet holds units 0..8.
/// let layout = ChipletLayout::new(vec![vec![8], (0..8).collect()], 9);
/// assert_eq!(layout.chiplets(), 2);
/// assert!(layout.same_chiplet(Endpoint::Cores, Endpoint::Unit(UnitId(8))));
/// assert!(!layout.same_chiplet(Endpoint::Cores, Endpoint::Unit(UnitId(0))));
/// ```
#[derive(Clone, Debug)]
pub struct ChipletLayout {
    placements: Vec<Placement>,
    cores: Placement,
    chiplet_count: usize,
}

impl ChipletLayout {
    /// Builds a layout from `groups`: `groups[0]` is the list of units
    /// co-located with the cores on chiplet 0; each subsequent group is
    /// its own chiplet. Every unit in `0..units` must appear exactly
    /// once.
    ///
    /// Units within a chiplet are placed on a square-ish 2D mesh in
    /// index order; the core complex occupies position (0, 0) of
    /// chiplet 0.
    ///
    /// # Panics
    ///
    /// Panics if a unit is missing, duplicated, or out of range.
    pub fn new(groups: Vec<Vec<u8>>, units: u8) -> Self {
        let mut placements: Vec<Option<Placement>> = (0..units).map(|_| None).collect();
        let mut seen = vec![false; units as usize];
        for (c, group) in groups.iter().enumerate() {
            // Chiplet 0 also hosts the core complex at slot 0.
            let slot_offset = if c == 0 { 1 } else { 0 };
            let side = ceil_sqrt(group.len() + slot_offset);
            for (i, &u) in group.iter().enumerate() {
                assert!((u as usize) < units as usize, "unit {u} out of range");
                assert!(!seen[u as usize], "unit {u} placed twice");
                seen[u as usize] = true;
                let slot = i + slot_offset;
                placements[u as usize] = Some(Placement {
                    chiplet: ChipletId(c as u8),
                    x: (slot % side) as u8,
                    y: (slot / side) as u8,
                });
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "every unit must be placed on some chiplet"
        );
        ChipletLayout {
            placements: placements.into_iter().map(Option::unwrap).collect(),
            cores: Placement {
                chiplet: ChipletId(0),
                x: 0,
                y: 0,
            },
            chiplet_count: groups.len(),
        }
    }

    /// Number of chiplets (including the core chiplet).
    pub fn chiplets(&self) -> usize {
        self.chiplet_count
    }

    /// Number of placed units.
    pub fn units(&self) -> usize {
        self.placements.len()
    }

    fn placement(&self, e: Endpoint) -> &Placement {
        match e {
            Endpoint::Cores => &self.cores,
            Endpoint::Unit(UnitId(u)) => &self.placements[u as usize],
        }
    }

    /// The chiplet an endpoint lives on.
    pub fn chiplet_of(&self, e: Endpoint) -> ChipletId {
        self.placement(e).chiplet
    }

    /// Whether two endpoints share a chiplet.
    pub fn same_chiplet(&self, a: Endpoint, b: Endpoint) -> bool {
        self.chiplet_of(a) == self.chiplet_of(b)
    }

    /// Manhattan mesh distance between two endpoints on the *same*
    /// chiplet.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the endpoints are on different chiplets.
    pub fn mesh_hops(&self, a: Endpoint, b: Endpoint) -> u32 {
        let pa = self.placement(a);
        let pb = self.placement(b);
        debug_assert_eq!(pa.chiplet, pb.chiplet, "mesh_hops across chiplets");
        (pa.x.abs_diff(pb.x) + pa.y.abs_diff(pb.y)) as u32
    }

    /// Mesh distance from an endpoint to its chiplet's edge router
    /// (position (0,0)), used for inter-chiplet transfers.
    pub fn hops_to_edge(&self, e: Endpoint) -> u32 {
        let p = self.placement(e);
        (p.x + p.y) as u32
    }
}

fn ceil_sqrt(n: usize) -> usize {
    let mut s = 1;
    while s * s < n {
        s += 1;
    }
    s.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_chiplet() -> ChipletLayout {
        ChipletLayout::new(vec![vec![8], (0..8).collect()], 9)
    }

    #[test]
    fn paper_two_chiplet_layout() {
        let l = two_chiplet();
        assert_eq!(l.chiplets(), 2);
        assert_eq!(l.units(), 9);
        assert_eq!(l.chiplet_of(Endpoint::Cores), ChipletId(0));
        assert_eq!(l.chiplet_of(Endpoint::Unit(UnitId(8))), ChipletId(0));
        for u in 0..8 {
            assert_eq!(l.chiplet_of(Endpoint::Unit(UnitId(u))), ChipletId(1));
        }
    }

    #[test]
    fn mesh_distances_are_manhattan() {
        let l = two_chiplet();
        // Units 0..8 on chiplet 1 in a 3x3 mesh: unit 0 at (0,0),
        // unit 4 at (1,1), unit 8 would be at (2,2) but lives on chiplet 0.
        assert_eq!(
            l.mesh_hops(Endpoint::Unit(UnitId(0)), Endpoint::Unit(UnitId(4))),
            2
        );
        assert_eq!(
            l.mesh_hops(Endpoint::Unit(UnitId(0)), Endpoint::Unit(UnitId(0))),
            0
        );
        // Cores at (0,0) of chiplet 0, unit 8 at (1,0).
        assert_eq!(l.mesh_hops(Endpoint::Cores, Endpoint::Unit(UnitId(8))), 1);
    }

    #[test]
    fn hops_to_edge() {
        let l = two_chiplet();
        assert_eq!(l.hops_to_edge(Endpoint::Cores), 0);
        assert!(l.hops_to_edge(Endpoint::Unit(UnitId(4))) >= 1);
    }

    #[test]
    fn single_chiplet_layout() {
        let l = ChipletLayout::new(vec![(0..9).collect()], 9);
        assert_eq!(l.chiplets(), 1);
        for u in 0..9 {
            assert!(l.same_chiplet(Endpoint::Cores, Endpoint::Unit(UnitId(u))));
        }
    }

    #[test]
    fn six_chiplet_layout() {
        // Fig 18's 6-chiplet organization shape: cores+LdB, then 5
        // accelerator chiplets.
        let l = ChipletLayout::new(
            vec![
                vec![8],
                vec![0, 1],
                vec![2, 3],
                vec![4],
                vec![5, 6],
                vec![7],
            ],
            9,
        );
        assert_eq!(l.chiplets(), 6);
        assert!(!l.same_chiplet(Endpoint::Unit(UnitId(0)), Endpoint::Unit(UnitId(2))));
        assert!(l.same_chiplet(Endpoint::Unit(UnitId(5)), Endpoint::Unit(UnitId(6))));
    }

    #[test]
    #[should_panic(expected = "placed twice")]
    fn duplicate_unit_rejected() {
        let _ = ChipletLayout::new(vec![vec![0, 0], vec![1]], 2);
    }

    #[test]
    #[should_panic(expected = "every unit must be placed")]
    fn missing_unit_rejected() {
        let _ = ChipletLayout::new(vec![vec![0]], 2);
    }

    #[test]
    fn ceil_sqrt_works() {
        assert_eq!(ceil_sqrt(1), 1);
        assert_eq!(ceil_sqrt(2), 2);
        assert_eq!(ceil_sqrt(4), 2);
        assert_eq!(ceil_sqrt(5), 3);
        assert_eq!(ceil_sqrt(9), 3);
        assert_eq!(ceil_sqrt(10), 4);
    }
}
