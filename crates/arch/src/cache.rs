//! Memory-system models: cache-hierarchy access latency and the shared
//! memory-bandwidth bus.
//!
//! The paper models LLC accesses, snoops, and DRAM contention
//! (DRAMSim2). At the operation granularity of this reproduction we
//! charge each payload access an expected hierarchy latency (LLC hit
//! ratio × LLC latency + miss ratio × memory latency) and serialize
//! memory-bound streaming on a shared bandwidth bus, so heavy load
//! produces genuine memory contention.

use accelflow_sim::time::{SimDuration, SimTime};

use crate::config::ArchConfig;

/// The shared memory bus: a bandwidth-limited resource all DRAM
/// streaming contends on.
///
/// # Example
///
/// ```
/// use accelflow_arch::cache::MemoryBus;
/// use accelflow_arch::config::ArchConfig;
/// use accelflow_sim::time::SimTime;
///
/// let cfg = ArchConfig::icelake();
/// let mut bus = MemoryBus::new(&cfg);
/// let t1 = bus.stream(SimTime::ZERO, 1 << 20);
/// let t2 = bus.stream(SimTime::ZERO, 1 << 20);
/// assert!(t2 > t1); // second stream queues behind the first
/// ```
#[derive(Clone, Debug)]
pub struct MemoryBus {
    bytes_per_sec: f64,
    next_free: SimTime,
    bytes: u64,
}

impl MemoryBus {
    /// Creates the bus with the configured aggregate bandwidth.
    pub fn new(cfg: &ArchConfig) -> Self {
        MemoryBus {
            bytes_per_sec: cfg.memory_bw,
            next_free: SimTime::ZERO,
            bytes: 0,
        }
    }

    /// Streams `bytes` through the bus starting no earlier than `now`;
    /// returns the completion instant.
    pub fn stream(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = self.next_free.max(now);
        let service = SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec);
        self.next_free = start + service;
        self.bytes += bytes;
        self.next_free
    }

    /// Total bytes streamed.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Bus utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let secs = now.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            (self.bytes as f64 / self.bytes_per_sec / secs).min(1.0)
        }
    }
}

/// Expected-latency model of the cache hierarchy, for payload reads and
/// writes by cores and accelerators.
#[derive(Clone, Copy, Debug)]
pub struct CacheHierarchy {
    llc_latency: SimDuration,
    memory_latency: SimDuration,
    llc_hit_ratio: f64,
    line_bytes: u64,
    memory_bw: f64,
}

impl CacheHierarchy {
    /// Builds the model from the architecture config.
    pub fn new(cfg: &ArchConfig) -> Self {
        CacheHierarchy {
            llc_latency: cfg.cycles(cfg.llc_latency_cycles),
            memory_latency: cfg.cycles(cfg.memory_latency_cycles),
            llc_hit_ratio: cfg.llc_hit_ratio,
            line_bytes: 64,
            memory_bw: cfg.memory_bw,
        }
    }

    /// Expected head latency for the first line of an access.
    pub fn head_latency(&self) -> SimDuration {
        let l = self.llc_hit_ratio * self.llc_latency.as_picos() as f64
            + (1.0 - self.llc_hit_ratio) * self.memory_latency.as_picos() as f64;
        SimDuration::from_picos(l.round() as u64)
    }

    /// Expected time to touch `bytes` sequentially: one head latency
    /// plus pipelined streaming of the remaining lines at memory
    /// bandwidth for the missing fraction.
    pub fn access(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let lines = bytes.div_ceil(self.line_bytes);
        let missed_bytes = (lines * self.line_bytes) as f64 * (1.0 - self.llc_hit_ratio);
        self.head_latency() + SimDuration::from_secs_f64(missed_bytes / self.memory_bw)
    }

    /// Bytes of this access that (in expectation) go to DRAM — the
    /// amount to book on the [`MemoryBus`].
    pub fn dram_bytes(&self, bytes: u64) -> u64 {
        ((bytes as f64) * (1.0 - self.llc_hit_ratio)).round() as u64
    }
}

impl accelflow_sim::snapshot::Snapshot for MemoryBus {
    fn save(&self, w: &mut accelflow_sim::snapshot::SnapWriter) {
        w.f64(self.bytes_per_sec);
        self.next_free.save(w);
        w.u64(self.bytes);
    }
    fn load(
        r: &mut accelflow_sim::snapshot::SnapReader<'_>,
    ) -> Result<Self, accelflow_sim::snapshot::SnapshotError> {
        Ok(MemoryBus {
            bytes_per_sec: r.f64()?,
            next_free: SimTime::load(r)?,
            bytes: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_serializes_streams() {
        let cfg = ArchConfig::icelake();
        let mut bus = MemoryBus::new(&cfg);
        let mb = 1 << 20;
        let f1 = bus.stream(SimTime::ZERO, mb);
        let f2 = bus.stream(SimTime::ZERO, mb);
        assert_eq!(
            (f2 - SimTime::ZERO).as_picos(),
            2 * (f1 - SimTime::ZERO).as_picos()
        );
        assert_eq!(bus.bytes(), 2 * mb);
    }

    #[test]
    fn bus_idles_between_bursts() {
        let cfg = ArchConfig::icelake();
        let mut bus = MemoryBus::new(&cfg);
        bus.stream(SimTime::ZERO, 1024);
        let late = SimTime::ZERO + SimDuration::from_millis(1);
        let f = bus.stream(late, 1024);
        assert!(f > late);
        assert!(f - late < SimDuration::from_micros(1));
        assert!(bus.utilization(late) < 0.01);
    }

    #[test]
    fn hierarchy_latency_bounds() {
        let cfg = ArchConfig::icelake();
        let h = CacheHierarchy::new(&cfg);
        let head = h.head_latency();
        assert!(head >= cfg.cycles(cfg.llc_latency_cycles));
        assert!(head <= cfg.cycles(cfg.memory_latency_cycles));
        assert_eq!(h.access(0), SimDuration::ZERO);
        assert!(h.access(64 * 1024) > h.access(64));
    }

    #[test]
    fn dram_fraction_tracks_hit_ratio() {
        let mut cfg = ArchConfig::icelake();
        cfg.llc_hit_ratio = 0.75;
        let h = CacheHierarchy::new(&cfg);
        assert_eq!(h.dram_bytes(4096), 1024);
    }
}
