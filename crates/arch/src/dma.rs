//! The A-DMA engines (paper Fig 6/10, Table III).
//!
//! AccelFlow output dispatchers and cores move payloads with a pool of
//! ten shared on-chip DMA engines. An engine is busy for the duration of
//! its transfer, so engines are a contended resource under load; the
//! transfer itself pays the engine programming latency plus the network
//! time between source and destination.

use accelflow_sim::resource::{Booking, ServerPool};
use accelflow_sim::time::{SimDuration, SimTime};

use crate::config::ArchConfig;
use crate::interconnect::Interconnect;
use crate::topology::Endpoint;

/// The pool of shared A-DMA engines.
///
/// # Example
///
/// ```
/// use accelflow_arch::config::ArchConfig;
/// use accelflow_arch::dma::DmaPool;
/// use accelflow_arch::interconnect::Interconnect;
/// use accelflow_arch::topology::{ChipletLayout, Endpoint, UnitId};
/// use accelflow_sim::time::SimTime;
///
/// let cfg = ArchConfig::icelake();
/// let net = Interconnect::new(&cfg, ChipletLayout::new(vec![vec![8], (0..8).collect()], 9));
/// let mut dma = DmaPool::new(&cfg);
/// let b = dma.transfer(SimTime::ZERO, &net, Endpoint::Unit(UnitId(0)), Endpoint::Unit(UnitId(1)), 2048);
/// assert!(b.finish > SimTime::ZERO);
/// ```
#[derive(Clone, Debug)]
pub struct DmaPool {
    engines: ServerPool,
    program_latency: SimDuration,
    bytes_moved: u64,
}

impl DmaPool {
    /// Creates the pool with `cfg.dma_engines` engines. Engine
    /// programming costs the queue→scratchpad base latency (both are
    /// short on-chip descriptor writes).
    pub fn new(cfg: &ArchConfig) -> Self {
        DmaPool {
            engines: ServerPool::new(cfg.dma_engines),
            program_latency: cfg.queue_to_scratchpad_latency,
            bytes_moved: 0,
        }
    }

    /// Books a transfer of `bytes` from `from` to `to` requested at
    /// `now`; returns when the transfer starts (an engine is free) and
    /// finishes (data landed at the destination).
    pub fn transfer(
        &mut self,
        now: SimTime,
        net: &Interconnect,
        from: Endpoint,
        to: Endpoint,
        bytes: u64,
    ) -> Booking {
        let service = self.program_latency + net.transfer_time(from, to, bytes);
        self.bytes_moved += bytes;
        self.engines.acquire(now, service)
    }

    /// Books a transfer with an explicitly-computed service time (e.g.
    /// a memory write that also pays the payload-access cost).
    pub fn transfer_with_service(
        &mut self,
        now: SimTime,
        service: SimDuration,
        bytes: u64,
    ) -> Booking {
        self.bytes_moved += bytes;
        self.engines.acquire(now, self.program_latency + service)
    }

    /// Total bytes moved by all engines.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Number of transfers performed.
    pub fn transfers(&self) -> u64 {
        self.engines.jobs()
    }

    /// Average engine utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.engines.utilization(now)
    }

    /// Number of engines in the pool.
    pub fn engine_count(&self) -> usize {
        self.engines.servers()
    }

    /// Engines with a transfer in flight at `now`.
    pub fn busy_engines(&self, now: SimTime) -> usize {
        self.engines.busy_at(now)
    }
}

impl accelflow_sim::snapshot::Snapshot for DmaPool {
    fn save(&self, w: &mut accelflow_sim::snapshot::SnapWriter) {
        self.engines.save(w);
        self.program_latency.save(w);
        w.u64(self.bytes_moved);
    }
    fn load(
        r: &mut accelflow_sim::snapshot::SnapReader<'_>,
    ) -> Result<Self, accelflow_sim::snapshot::SnapshotError> {
        Ok(DmaPool {
            engines: ServerPool::load(r)?,
            program_latency: SimDuration::load(r)?,
            bytes_moved: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{ChipletLayout, UnitId};

    fn setup() -> (ArchConfig, Interconnect, DmaPool) {
        let cfg = ArchConfig::icelake();
        let net = Interconnect::new(&cfg, ChipletLayout::new(vec![vec![8], (0..8).collect()], 9));
        let dma = DmaPool::new(&cfg);
        (cfg, net, dma)
    }

    #[test]
    fn transfers_queue_when_engines_exhausted() {
        let (cfg, net, mut dma) = setup();
        let from = Endpoint::Unit(UnitId(0));
        let to = Endpoint::Unit(UnitId(1));
        let mut last = SimTime::ZERO;
        // 11 concurrent transfers on 10 engines: the 11th must wait.
        for i in 0..11 {
            let b = dma.transfer(SimTime::ZERO, &net, from, to, 2048);
            if i < cfg.dma_engines {
                assert_eq!(b.start, SimTime::ZERO, "engine {i} should start at 0");
            } else {
                assert!(b.start > SimTime::ZERO, "11th transfer must queue");
            }
            last = last.max(b.finish);
        }
        assert_eq!(dma.transfers(), 11);
        assert_eq!(dma.bytes_moved(), 11 * 2048);
        assert!(dma.utilization(last) > 0.0);
    }

    #[test]
    fn bigger_transfers_take_longer() {
        let (_, net, mut dma) = setup();
        let from = Endpoint::Unit(UnitId(0));
        let to = Endpoint::Unit(UnitId(7));
        let small = dma.transfer(SimTime::ZERO, &net, from, to, 64);
        let big = dma.transfer(SimTime::ZERO, &net, from, to, 32 * 1024);
        assert!(big.finish - big.start > small.finish - small.start);
    }

    #[test]
    fn explicit_service_transfer() {
        let (_, _, mut dma) = setup();
        let b = dma.transfer_with_service(SimTime::ZERO, SimDuration::from_nanos(100), 512);
        assert_eq!(
            b.finish - b.start,
            SimDuration::from_nanos(110) // 10 ns programming + 100 ns service
        );
        assert_eq!(dma.bytes_moved(), 512);
    }
}
