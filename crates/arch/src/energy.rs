//! Energy and power accounting (paper §VI area/power and §VII-B5).
//!
//! The paper computes power with McPAT and reports: accelerators draw at
//! most 12.5 W and the AccelFlow orchestration structures 5.0 W (3.1%
//! and 1.2% of server power); running the services, AccelFlow cuts
//! server energy 74% versus Non-acc and improves perf/W 7.2× (2.1× vs
//! RELIEF). We reproduce the *relative* results with a parameterized
//! activity-based model: busy/idle power for cores and accelerators
//! plus per-event energies for the orchestration structures.

use accelflow_sim::time::{SimDuration, SimTime};

/// Power/energy coefficients, loosely calibrated to the paper's McPAT
/// numbers (36-core server ≈ 400 W max; nine 8-PE accelerators ≈
/// 12.5 W; orchestration ≈ 5 W).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Active power of one core, watts.
    pub core_active_w: f64,
    /// Idle power of one core, watts.
    pub core_idle_w: f64,
    /// Active power of one accelerator (all PEs), watts.
    pub accel_active_w: f64,
    /// Idle power of one accelerator, watts.
    pub accel_idle_w: f64,
    /// Uncore/LLC/static power, watts.
    pub uncore_w: f64,
    /// Energy per dispatcher RISC-like glue instruction, joules.
    pub dispatcher_instr_j: f64,
    /// Energy per input/output queue access, joules.
    pub queue_access_j: f64,
    /// Energy per DMA byte moved, joules.
    pub dma_byte_j: f64,
    /// Energy per byte crossing the on-package network, joules.
    pub noc_byte_j: f64,
}

impl EnergyModel {
    /// The reproduction's default coefficients.
    pub fn mcpat_like() -> Self {
        EnergyModel {
            core_active_w: 8.0,
            core_idle_w: 0.8,
            accel_active_w: 1.4,
            accel_idle_w: 0.1,
            uncore_w: 60.0,
            dispatcher_instr_j: 40e-12,
            queue_access_j: 120e-12,
            dma_byte_j: 1.2e-12,
            noc_byte_j: 0.8e-12,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::mcpat_like()
    }
}

/// Accumulates activity and converts it to energy.
///
/// # Example
///
/// ```
/// use accelflow_arch::energy::{EnergyMeter, EnergyModel};
/// use accelflow_sim::time::{SimDuration, SimTime};
///
/// let mut meter = EnergyMeter::new(EnergyModel::mcpat_like(), 36, 9);
/// meter.add_core_busy(SimDuration::from_millis(10));
/// meter.add_accel_busy(SimDuration::from_millis(5));
/// let report = meter.report(SimTime::ZERO + SimDuration::from_millis(10));
/// assert!(report.total_j > 0.0);
/// assert!(report.core_j > report.accel_j);
/// ```
#[derive(Clone, Debug)]
pub struct EnergyMeter {
    model: EnergyModel,
    cores: usize,
    accelerators: usize,
    core_busy: SimDuration,
    accel_busy: SimDuration,
    dispatcher_instrs: u64,
    queue_accesses: u64,
    dma_bytes: u64,
    noc_bytes: u64,
}

/// An energy breakdown over a simulated window.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyReport {
    /// Core energy (active + idle), joules.
    pub core_j: f64,
    /// Accelerator energy (active + idle), joules.
    pub accel_j: f64,
    /// Orchestration energy (dispatchers, queues, DMA, NoC), joules.
    pub orchestration_j: f64,
    /// Uncore/static energy, joules.
    pub uncore_j: f64,
    /// Total, joules.
    pub total_j: f64,
    /// Average power over the window, watts.
    pub avg_power_w: f64,
}

impl EnergyMeter {
    /// Creates a meter for `cores` cores and `accelerators`
    /// accelerators.
    pub fn new(model: EnergyModel, cores: usize, accelerators: usize) -> Self {
        EnergyMeter {
            model,
            cores,
            accelerators,
            core_busy: SimDuration::ZERO,
            accel_busy: SimDuration::ZERO,
            dispatcher_instrs: 0,
            queue_accesses: 0,
            dma_bytes: 0,
            noc_bytes: 0,
        }
    }

    /// Adds core busy time (across all cores).
    pub fn add_core_busy(&mut self, d: SimDuration) {
        self.core_busy += d;
    }

    /// Adds accelerator busy time (across all accelerators/PEs).
    pub fn add_accel_busy(&mut self, d: SimDuration) {
        self.accel_busy += d;
    }

    /// Adds dispatcher glue instructions.
    pub fn add_dispatcher_instrs(&mut self, n: u64) {
        self.dispatcher_instrs += n;
    }

    /// Adds input/output queue accesses.
    pub fn add_queue_accesses(&mut self, n: u64) {
        self.queue_accesses += n;
    }

    /// Adds DMA traffic.
    pub fn add_dma_bytes(&mut self, n: u64) {
        self.dma_bytes += n;
    }

    /// Adds on-package network traffic.
    pub fn add_noc_bytes(&mut self, n: u64) {
        self.noc_bytes += n;
    }

    /// Monotone activity totals: `(core busy, accel busy, summed event
    /// counters)`. Every accumulator only grows, so consistency audits
    /// can assert these never decrease between observations.
    pub fn activity(&self) -> (SimDuration, SimDuration, u64) {
        (
            self.core_busy,
            self.accel_busy,
            self.dispatcher_instrs + self.queue_accesses + self.dma_bytes + self.noc_bytes,
        )
    }

    /// Produces the energy breakdown for the window `[0, now]`.
    ///
    /// Busy time beyond the available capacity (e.g. accumulated after
    /// `now`) is clamped so idle time never goes negative.
    pub fn report(&self, now: SimTime) -> EnergyReport {
        let window = now.as_secs_f64();
        let m = &self.model;

        let core_capacity = window * self.cores as f64;
        let core_busy = self.core_busy.as_secs_f64().min(core_capacity);
        let core_idle = (core_capacity - core_busy).max(0.0);
        let core_j = core_busy * m.core_active_w + core_idle * m.core_idle_w;

        let accel_capacity = window * self.accelerators as f64;
        let accel_busy = self.accel_busy.as_secs_f64().min(accel_capacity);
        let accel_idle = (accel_capacity - accel_busy).max(0.0);
        let accel_j = accel_busy * m.accel_active_w + accel_idle * m.accel_idle_w;

        let orchestration_j = self.dispatcher_instrs as f64 * m.dispatcher_instr_j
            + self.queue_accesses as f64 * m.queue_access_j
            + self.dma_bytes as f64 * m.dma_byte_j
            + self.noc_bytes as f64 * m.noc_byte_j;

        let uncore_j = window * m.uncore_w;
        let total_j = core_j + accel_j + orchestration_j + uncore_j;
        EnergyReport {
            core_j,
            accel_j,
            orchestration_j,
            uncore_j,
            total_j,
            avg_power_w: if window > 0.0 { total_j / window } else { 0.0 },
        }
    }
}

impl accelflow_sim::snapshot::Snapshot for EnergyReport {
    fn save(&self, w: &mut accelflow_sim::snapshot::SnapWriter) {
        w.f64(self.core_j);
        w.f64(self.accel_j);
        w.f64(self.orchestration_j);
        w.f64(self.uncore_j);
        w.f64(self.total_j);
        w.f64(self.avg_power_w);
    }
    fn load(
        r: &mut accelflow_sim::snapshot::SnapReader<'_>,
    ) -> Result<Self, accelflow_sim::snapshot::SnapshotError> {
        Ok(EnergyReport {
            core_j: r.f64()?,
            accel_j: r.f64()?,
            orchestration_j: r.f64()?,
            uncore_j: r.f64()?,
            total_j: r.f64()?,
            avg_power_w: r.f64()?,
        })
    }
}

impl accelflow_sim::snapshot::Snapshot for EnergyModel {
    fn save(&self, w: &mut accelflow_sim::snapshot::SnapWriter) {
        w.f64(self.core_active_w);
        w.f64(self.core_idle_w);
        w.f64(self.accel_active_w);
        w.f64(self.accel_idle_w);
        w.f64(self.uncore_w);
        w.f64(self.dispatcher_instr_j);
        w.f64(self.queue_access_j);
        w.f64(self.dma_byte_j);
        w.f64(self.noc_byte_j);
    }
    fn load(
        r: &mut accelflow_sim::snapshot::SnapReader<'_>,
    ) -> Result<Self, accelflow_sim::snapshot::SnapshotError> {
        Ok(EnergyModel {
            core_active_w: r.f64()?,
            core_idle_w: r.f64()?,
            accel_active_w: r.f64()?,
            accel_idle_w: r.f64()?,
            uncore_w: r.f64()?,
            dispatcher_instr_j: r.f64()?,
            queue_access_j: r.f64()?,
            dma_byte_j: r.f64()?,
            noc_byte_j: r.f64()?,
        })
    }
}

impl accelflow_sim::snapshot::Snapshot for EnergyMeter {
    fn save(&self, w: &mut accelflow_sim::snapshot::SnapWriter) {
        self.model.save(w);
        w.usize(self.cores);
        w.usize(self.accelerators);
        self.core_busy.save(w);
        self.accel_busy.save(w);
        w.u64(self.dispatcher_instrs);
        w.u64(self.queue_accesses);
        w.u64(self.dma_bytes);
        w.u64(self.noc_bytes);
    }
    fn load(
        r: &mut accelflow_sim::snapshot::SnapReader<'_>,
    ) -> Result<Self, accelflow_sim::snapshot::SnapshotError> {
        Ok(EnergyMeter {
            model: EnergyModel::load(r)?,
            cores: r.usize()?,
            accelerators: r.usize()?,
            core_busy: SimDuration::load(r)?,
            accel_busy: SimDuration::load(r)?,
            dispatcher_instrs: r.u64()?,
            queue_accesses: r.u64()?,
            dma_bytes: r.u64()?,
            noc_bytes: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter() -> EnergyMeter {
        EnergyMeter::new(EnergyModel::mcpat_like(), 36, 9)
    }

    #[test]
    fn idle_server_burns_idle_power_only() {
        let m = meter();
        let window = SimTime::ZERO + SimDuration::from_secs(1);
        let r = m.report(window);
        let expect = 36.0 * 0.8 + 9.0 * 0.1 + 60.0;
        assert!((r.avg_power_w - expect).abs() < 1e-6, "{}", r.avg_power_w);
        assert_eq!(r.orchestration_j, 0.0);
    }

    #[test]
    fn moving_work_to_accelerators_saves_energy() {
        // 1 second window; the same "work" done on cores vs on
        // accelerators (5x faster and much lower power).
        let window = SimTime::ZERO + SimDuration::from_secs(1);
        let mut on_cpu = meter();
        on_cpu.add_core_busy(SimDuration::from_millis(10_000)); // 10 core-seconds

        let mut on_accel = meter();
        on_accel.add_core_busy(SimDuration::from_millis(2_100)); // app logic
        on_accel.add_accel_busy(SimDuration::from_millis(1_600)); // tax / speedup

        let e_cpu = on_cpu.report(window).total_j;
        let e_accel = on_accel.report(window).total_j;
        assert!(e_accel < e_cpu * 0.75, "cpu {e_cpu} accel {e_accel}");

        // The paper's −74% (§VII-B5) also reflects the accelerated run
        // *finishing sooner* (fixed 400K-request batch): a shorter
        // window shrinks idle/static energy too.
        let short = SimTime::ZERO + SimDuration::from_millis(250);
        let e_accel_fast = on_accel.report(short).total_j;
        assert!(
            e_accel_fast < e_cpu * 0.35,
            "cpu {e_cpu} accel fast {e_accel_fast}"
        );
    }

    #[test]
    fn orchestration_energy_accumulates() {
        let mut m = meter();
        m.add_dispatcher_instrs(1_000_000);
        m.add_queue_accesses(100_000);
        m.add_dma_bytes(1 << 30);
        m.add_noc_bytes(1 << 30);
        let r = m.report(SimTime::ZERO + SimDuration::from_secs(1));
        assert!(r.orchestration_j > 0.0);
        // Orchestration stays a small fraction of server energy.
        assert!(r.orchestration_j < 0.05 * r.total_j);
    }

    #[test]
    fn busy_clamped_to_capacity() {
        let mut m = meter();
        m.add_core_busy(SimDuration::from_secs(100)); // > 36 core-seconds in 1s window
        let r = m.report(SimTime::ZERO + SimDuration::from_secs(1));
        let max_core = 36.0 * 8.0;
        assert!(r.core_j <= max_core + 1e-9);
    }

    #[test]
    fn zero_window_is_safe() {
        let r = meter().report(SimTime::ZERO);
        assert_eq!(r.avg_power_w, 0.0);
        assert_eq!(r.total_j, 0.0);
    }
}
