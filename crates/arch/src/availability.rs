//! Availability state for a set of hardware units.
//!
//! The fault injector (see `accelflow-core::faults`) marks accelerator
//! stations *dark* for drawn durations — a transient hang, a microcode
//! assist, a thermal trip. This tracker owns the per-unit dark-until
//! timestamps and the cumulative dark-time meter so the machine and
//! the auditor can share one definition of "available".
//!
//! # Example
//!
//! ```
//! use accelflow_arch::availability::AvailabilitySet;
//! use accelflow_sim::time::{SimDuration, SimTime};
//!
//! let mut avail = AvailabilitySet::new(3);
//! let now = SimTime::ZERO;
//! assert!(avail.is_available(1, now));
//! let until = avail.darken(1, now, SimDuration::from_micros(50));
//! assert!(!avail.is_available(1, now));
//! assert!(avail.is_available(1, until)); // the window is half-open
//! assert_eq!(avail.total_dark_time(), SimDuration::from_micros(50));
//! ```

use accelflow_sim::time::{SimDuration, SimTime};

/// Per-unit dark windows with a cumulative dark-time meter.
///
/// A unit is *dark* on the half-open interval `[darken-time,
/// dark_until)`; overlapping darkenings extend the window and the
/// meter counts each simulated picosecond of darkness exactly once.
#[derive(Clone, Debug)]
pub struct AvailabilitySet {
    dark_until: Vec<SimTime>,
    dark_time: SimDuration,
    darkenings: u64,
}

impl AvailabilitySet {
    /// Creates a tracker for `n` units, all available.
    pub fn new(n: usize) -> Self {
        AvailabilitySet {
            dark_until: vec![SimTime::ZERO; n],
            dark_time: SimDuration::ZERO,
            darkenings: 0,
        }
    }

    /// Number of tracked units.
    pub fn len(&self) -> usize {
        self.dark_until.len()
    }

    /// Whether the tracker has no units.
    pub fn is_empty(&self) -> bool {
        self.dark_until.is_empty()
    }

    /// Whether `unit` may accept or start work at `now`.
    pub fn is_available(&self, unit: usize, now: SimTime) -> bool {
        now >= self.dark_until[unit]
    }

    /// When `unit`'s current dark window ends (`<= now` if available).
    pub fn dark_until(&self, unit: usize) -> SimTime {
        self.dark_until[unit]
    }

    /// Marks `unit` dark for `duration` starting at `now`, merging with
    /// any dark window still in force. Returns the (possibly extended)
    /// end of the window.
    pub fn darken(&mut self, unit: usize, now: SimTime, duration: SimDuration) -> SimTime {
        self.darkenings += 1;
        let fresh_from = self.dark_until[unit].max(now);
        let until = now + duration;
        if until > fresh_from {
            self.dark_time += until.saturating_since(fresh_from);
            self.dark_until[unit] = until;
        }
        self.dark_until[unit]
    }

    /// Units available at `now`.
    pub fn available_count(&self, now: SimTime) -> usize {
        self.dark_until.iter().filter(|&&u| now >= u).count()
    }

    /// Cumulative unit-time spent dark (overlaps counted once).
    pub fn total_dark_time(&self) -> SimDuration {
        self.dark_time
    }

    /// How many darkenings were applied over the tracker's lifetime.
    pub fn darkenings(&self) -> u64 {
        self.darkenings
    }
}

impl accelflow_sim::snapshot::Snapshot for AvailabilitySet {
    fn save(&self, w: &mut accelflow_sim::snapshot::SnapWriter) {
        self.dark_until.save(w);
        self.dark_time.save(w);
        w.u64(self.darkenings);
    }
    fn load(
        r: &mut accelflow_sim::snapshot::SnapReader<'_>,
    ) -> Result<Self, accelflow_sim::snapshot::SnapshotError> {
        Ok(AvailabilitySet {
            dark_until: Vec::load(r)?,
            dark_time: SimDuration::load(r)?,
            darkenings: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_units_are_available() {
        let a = AvailabilitySet::new(4);
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
        assert_eq!(a.available_count(SimTime::ZERO), 4);
        assert_eq!(a.total_dark_time(), SimDuration::ZERO);
    }

    #[test]
    fn darken_and_recover() {
        let mut a = AvailabilitySet::new(2);
        let now = SimTime::ZERO + SimDuration::from_micros(10);
        let until = a.darken(0, now, SimDuration::from_micros(5));
        assert_eq!(until, now + SimDuration::from_micros(5));
        assert!(!a.is_available(0, now));
        assert!(a.is_available(1, now), "sibling unaffected");
        assert_eq!(a.available_count(now), 1);
        assert!(a.is_available(0, until), "window is half-open");
        assert_eq!(a.darkenings(), 1);
    }

    #[test]
    fn overlapping_windows_merge_without_double_counting() {
        let mut a = AvailabilitySet::new(1);
        let t0 = SimTime::ZERO;
        a.darken(0, t0, SimDuration::from_micros(10));
        // Overlap: starts inside the first window, extends it by 5 µs.
        let t5 = t0 + SimDuration::from_micros(5);
        let until = a.darken(0, t5, SimDuration::from_micros(10));
        assert_eq!(until, t5 + SimDuration::from_micros(10));
        assert_eq!(a.total_dark_time(), SimDuration::from_micros(15));
        // Fully contained window: no extension, no extra dark time.
        let t6 = t0 + SimDuration::from_micros(6);
        assert_eq!(a.darken(0, t6, SimDuration::from_micros(1)), until);
        assert_eq!(a.total_dark_time(), SimDuration::from_micros(15));
        assert_eq!(a.darkenings(), 3);
    }
}
