//! The on-package network: intra-chiplet 2D mesh plus inter-chiplet
//! links (paper Table III).
//!
//! Intra-chiplet transfers pay 3 cycles per mesh hop and serialize on
//! 16-byte links at the core clock. Inter-chiplet transfers additionally
//! pay the fully-connected inter-chiplet link latency (60 cycles at
//! baseline; §VII-C2 sweeps 20–100) and the link bandwidth.

use accelflow_sim::time::SimDuration;

use crate::config::ArchConfig;
use crate::topology::{ChipletLayout, Endpoint};

/// Latency/bandwidth model of the on-package network.
///
/// # Example
///
/// ```
/// use accelflow_arch::config::ArchConfig;
/// use accelflow_arch::interconnect::Interconnect;
/// use accelflow_arch::topology::{ChipletLayout, Endpoint, UnitId};
///
/// let cfg = ArchConfig::icelake();
/// let layout = ChipletLayout::new(vec![vec![8], (0..8).collect()], 9);
/// let net = Interconnect::new(&cfg, layout);
/// let near = net.transfer_time(Endpoint::Unit(UnitId(0)), Endpoint::Unit(UnitId(1)), 256);
/// let far = net.transfer_time(Endpoint::Cores, Endpoint::Unit(UnitId(0)), 256);
/// assert!(far > near); // crossing chiplets costs more
/// ```
#[derive(Clone, Debug)]
pub struct Interconnect {
    layout: ChipletLayout,
    hop_latency: SimDuration,
    link_bytes_per_cycle: f64,
    cycle: SimDuration,
    inter_chiplet_latency: SimDuration,
    inter_chiplet_bw: f64,
}

impl Interconnect {
    /// Builds the network model from the architecture config and a
    /// chiplet layout.
    pub fn new(cfg: &ArchConfig, layout: ChipletLayout) -> Self {
        Interconnect {
            layout,
            hop_latency: cfg.cycles(cfg.mesh_hop_cycles),
            link_bytes_per_cycle: cfg.mesh_link_bytes as f64,
            cycle: cfg.core_clock.cycle(),
            inter_chiplet_latency: cfg.cycles(cfg.inter_chiplet_cycles),
            inter_chiplet_bw: cfg.inter_chiplet_bw,
        }
    }

    /// The chiplet layout this network connects.
    pub fn layout(&self) -> &ChipletLayout {
        &self.layout
    }

    /// Replaces the inter-chiplet link latency (for the §VII-C2 sweep).
    pub fn set_inter_chiplet_latency(&mut self, latency: SimDuration) {
        self.inter_chiplet_latency = latency;
    }

    /// End-to-end time to move `bytes` from `from` to `to`:
    /// head-of-message latency (hops, plus the inter-chiplet link if
    /// crossing) plus serialization of the message body.
    pub fn transfer_time(&self, from: Endpoint, to: Endpoint, bytes: u64) -> SimDuration {
        if from == to {
            return SimDuration::ZERO;
        }
        if self.layout.same_chiplet(from, to) {
            let hops = self.layout.mesh_hops(from, to).max(1);
            self.hop_latency * hops as u64 + self.serialize_mesh(bytes)
        } else {
            let hops = self.layout.hops_to_edge(from) + self.layout.hops_to_edge(to);
            self.hop_latency * hops.max(1) as u64
                + self.inter_chiplet_latency
                + self.serialize_mesh(bytes).max(self.serialize_link(bytes))
        }
    }

    /// Head-of-message latency only (no payload), e.g. for doorbell or
    /// notification messages.
    pub fn signal_time(&self, from: Endpoint, to: Endpoint) -> SimDuration {
        self.transfer_time(from, to, 0)
    }

    fn serialize_mesh(&self, bytes: u64) -> SimDuration {
        let cycles = bytes as f64 / self.link_bytes_per_cycle;
        SimDuration::from_picos((cycles * self.cycle.as_picos() as f64).round() as u64)
    }

    fn serialize_link(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.inter_chiplet_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::UnitId;

    fn net() -> Interconnect {
        let cfg = ArchConfig::icelake();
        let layout = ChipletLayout::new(vec![vec![8], (0..8).collect()], 9);
        Interconnect::new(&cfg, layout)
    }

    #[test]
    fn zero_for_self_transfer() {
        let n = net();
        assert_eq!(
            n.transfer_time(Endpoint::Unit(UnitId(3)), Endpoint::Unit(UnitId(3)), 4096),
            SimDuration::ZERO
        );
    }

    #[test]
    fn intra_chiplet_latency_matches_hops() {
        let cfg = ArchConfig::icelake();
        let n = net();
        // Unit 0 (0,0) to unit 1 (1,0): one hop, 3 cycles + 0-byte body.
        let t = n.signal_time(Endpoint::Unit(UnitId(0)), Endpoint::Unit(UnitId(1)));
        assert_eq!(t, cfg.cycles(3.0));
    }

    #[test]
    fn inter_chiplet_adds_link_latency() {
        let cfg = ArchConfig::icelake();
        let n = net();
        let t = n.signal_time(Endpoint::Cores, Endpoint::Unit(UnitId(0)));
        // At least the 60-cycle link latency.
        assert!(t >= cfg.cycles(60.0));
    }

    #[test]
    fn serialization_grows_with_size() {
        let n = net();
        let a = n.transfer_time(Endpoint::Unit(UnitId(0)), Endpoint::Unit(UnitId(1)), 64);
        let b = n.transfer_time(
            Endpoint::Unit(UnitId(0)),
            Endpoint::Unit(UnitId(1)),
            64 * 1024,
        );
        assert!(b > a * 10);
    }

    #[test]
    fn latency_sweep_hook() {
        let cfg = ArchConfig::icelake();
        let mut n = net();
        let base = n.signal_time(Endpoint::Cores, Endpoint::Unit(UnitId(0)));
        n.set_inter_chiplet_latency(cfg.cycles(100.0));
        let slow = n.signal_time(Endpoint::Cores, Endpoint::Unit(UnitId(0)));
        assert_eq!(slow - base, cfg.cycles(40.0));
    }

    #[test]
    fn symmetric_transfers() {
        let n = net();
        let ab = n.transfer_time(Endpoint::Unit(UnitId(2)), Endpoint::Unit(UnitId(5)), 1024);
        let ba = n.transfer_time(Endpoint::Unit(UnitId(5)), Endpoint::Unit(UnitId(2)), 1024);
        assert_eq!(ab, ba);
    }
}
