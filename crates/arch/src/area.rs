//! Silicon-area accounting (paper §VI, "Area Overhead of AccelFlow").
//!
//! The paper computes areas with McPAT at 32 nm scaled to 7 nm and
//! combines them with the accelerator areas the literature provides
//! (ProtoAcc for (De)Ser, CDPU for (De)Cmp), estimating the rest by
//! functional similarity. This module encodes that accounting so the
//! area claims are reproducible: AccelFlow's orchestration hardware
//! (queues, dispatchers, A-DMA engines, accelerator network) adds at
//! most ~2.9% to the SoC.

use accelflow_trace::kind::AccelKind;

use crate::config::ArchConfig;

/// Area of one component in mm² (7 nm-scaled, after the paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mm2(pub f64);

/// The paper's per-accelerator areas (8 PEs + 8 scratchpads each),
/// §VI: Ser 0.6, Dser 0.9, Cmp 9.1, Dcmp 5.2 from the literature;
/// TCP/(De)Encr estimated like Cmp; RPC/LdB like Dser.
pub fn accelerator_area(kind: AccelKind) -> Mm2 {
    use AccelKind::*;
    Mm2(match kind {
        Ser => 0.6,
        Dser => 0.9,
        Cmp => 9.1,
        Dcmp => 5.2,
        Tcp | Encr | Decr => 9.1, // "similar area as Cmp"
        Rpc | Ldb => 0.9,         // "similar area as Dser"
    })
}

/// A full area report for the modeled SoC.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaReport {
    /// Cores and their private caches.
    pub cores: Mm2,
    /// The shared LLC.
    pub llc: Mm2,
    /// The core-side network.
    pub core_network: Mm2,
    /// All accelerators (PEs + scratchpads).
    pub accelerators: Mm2,
    /// Input/output queues and dispatchers for all accelerators.
    pub queues_dispatchers: Mm2,
    /// The A-DMA engines.
    pub dma_engines: Mm2,
    /// The accelerator-side network.
    pub accel_network: Mm2,
}

impl AreaReport {
    /// The baseline processor area (no accelerators).
    pub fn baseline(&self) -> Mm2 {
        Mm2(self.cores.0 + self.llc.0 + self.core_network.0)
    }

    /// Everything the accelerator ensemble adds.
    pub fn ensemble(&self) -> Mm2 {
        Mm2(self.accelerators.0
            + self.queues_dispatchers.0
            + self.dma_engines.0
            + self.accel_network.0)
    }

    /// Total SoC area.
    pub fn total(&self) -> Mm2 {
        Mm2(self.baseline().0 + self.ensemble().0)
    }

    /// The ensemble's share of the SoC (paper: 29.0%).
    pub fn ensemble_share(&self) -> f64 {
        self.ensemble().0 / self.total().0
    }

    /// The accelerators' share of the SoC (paper: 26.1%).
    pub fn accelerator_share(&self) -> f64 {
        self.accelerators.0 / self.total().0
    }

    /// AccelFlow's orchestration overhead: the non-accelerator parts
    /// of the ensemble as a share of the SoC (paper: "at most 2.9%").
    pub fn orchestration_share(&self) -> f64 {
        (self.ensemble().0 - self.accelerators.0) / self.total().0
    }
}

/// Computes the §VI area report for a configuration.
///
/// The paper's numbers assume the Table III geometry (8 PEs, 64-entry
/// queues, 10 A-DMA engines); queue/dispatcher/DMA areas scale
/// linearly with the configured counts.
///
/// # Example
///
/// ```
/// use accelflow_arch::area::area_report;
/// use accelflow_arch::config::ArchConfig;
///
/// let report = area_report(&ArchConfig::icelake());
/// // Paper §VI: the AccelFlow structures add at most 2.9% of the SoC.
/// assert!(report.orchestration_share() < 0.035);
/// ```
pub fn area_report(cfg: &ArchConfig) -> AreaReport {
    // §VI baseline: 122.3 mm² = 83.1 cores + 38.2 LLC + 1.0 network.
    let cores = Mm2(83.1 * cfg.cores as f64 / 36.0);
    let llc = Mm2(38.2);
    let core_network = Mm2(1.0);

    let pe_scale = cfg.pes_per_accelerator as f64 / 8.0;
    let accelerators = Mm2(AccelKind::ALL
        .iter()
        .map(|&k| accelerator_area(k).0 * pe_scale)
        .sum());

    // §VI: queues (64×2.1 KB entries in + out) and dispatchers
    // (conservatively each the area of a Dser) total 3.4 mm² for all
    // nine accelerators at the baseline geometry.
    let queue_scale = (cfg.input_queue_entries + cfg.output_queue_entries) as f64 / 128.0;
    let queues_dispatchers = Mm2(3.4 * (0.5 + 0.5 * queue_scale));
    let dma_engines = Mm2(1.3 * cfg.dma_engines as f64 / 10.0);
    let accel_network = Mm2(0.4);

    AreaReport {
        cores,
        llc,
        core_network,
        accelerators,
        queues_dispatchers,
        dma_engines,
        accel_network,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_section_vi() {
        let r = area_report(&ArchConfig::icelake());
        assert!((r.baseline().0 - 122.3).abs() < 0.01);
        // Nine accelerators at 8 PEs: paper says 44.9 mm².
        assert!(
            (r.accelerators.0 - 44.9).abs() < 1.0,
            "{}",
            r.accelerators.0
        );
    }

    #[test]
    fn shares_match_the_paper() {
        let r = area_report(&ArchConfig::icelake());
        assert!(
            (r.ensemble_share() - 0.290).abs() < 0.01,
            "{}",
            r.ensemble_share()
        );
        assert!(
            (r.accelerator_share() - 0.261).abs() < 0.01,
            "{}",
            r.accelerator_share()
        );
        assert!(
            r.orchestration_share() <= 0.030,
            "{}",
            r.orchestration_share()
        );
    }

    #[test]
    fn fewer_pes_shrink_accelerators_only() {
        let mut cfg = ArchConfig::icelake();
        cfg.pes_per_accelerator = 2;
        let small = area_report(&cfg);
        let full = area_report(&ArchConfig::icelake());
        assert!(small.accelerators.0 < full.accelerators.0 / 3.0);
        assert_eq!(small.baseline(), full.baseline());
    }

    #[test]
    fn compression_engines_dominate_accelerator_area() {
        // CDPU-class engines are by far the largest (paper's data).
        let cmp = accelerator_area(AccelKind::Cmp).0;
        for k in [
            AccelKind::Ser,
            AccelKind::Dser,
            AccelKind::Rpc,
            AccelKind::Ldb,
        ] {
            assert!(accelerator_area(k).0 < cmp / 5.0, "{k}");
        }
    }
}
