//! Hardware substrate models for the AccelFlow reproduction.
//!
//! The paper evaluates AccelFlow on a simulated server-class processor
//! (Table III): 36 IceLake-like cores at 2.4 GHz on a core chiplet, nine
//! datacenter-tax accelerators (eight on an accelerator chiplet plus the
//! load balancer beside the cores), a 2D-mesh intra-chiplet network, a
//! 60-cycle inter-chiplet link, ten shared A-DMA engines, per-accelerator
//! TLBs backed by an IOMMU, and a DDR memory system.
//!
//! This crate provides those structures as explicit, unit-tested models:
//!
//! - [`config`] — the Table III parameter set and CPU-generation scaling
//!   (Fig 20).
//! - [`topology`] — chiplet layouts (1/2/3/4/6-chiplet organizations of
//!   Fig 18) and mesh placement.
//! - [`interconnect`] — latency + bandwidth between any two endpoints.
//! - [`dma`] — the A-DMA engine pool and transfer-time model.
//! - [`tlb`] — set-associative address-translation caches with IOMMU
//!   walk latency on miss.
//! - [`cache`] — cache-hierarchy access latency and the shared
//!   memory-bandwidth model.
//! - [`energy`] — per-access energy accounting for the §VII-B5
//!   power/energy results.
//! - [`area`] — the §VI silicon-area accounting (the ~2.9% overhead
//!   claim, reproducible).
//! - [`availability`] — per-unit dark windows for the fault injector
//!   (`accelflow-core::faults`, `docs/RESILIENCE.md`).

#![warn(missing_docs)]

pub mod area;
pub mod availability;
pub mod cache;
pub mod config;
pub mod dma;
pub mod energy;
pub mod interconnect;
pub mod tlb;
pub mod topology;

pub use config::{ArchConfig, CpuGeneration};
pub use dma::DmaPool;
pub use interconnect::Interconnect;
pub use tlb::Tlb;
pub use topology::{ChipletId, ChipletLayout, Endpoint};
