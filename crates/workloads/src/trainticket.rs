//! Train-Ticket-like services (paper §III runs "over 80 open-source
//! services from DeathStarBench, Train Ticket, and µSuite").
//!
//! Train Ticket is a Java microservice benchmark: heavier
//! application logic per stage (JVM), deep synchronous call chains
//! (order → seat → price → payment), and comparatively *fewer*
//! branchy tax sequences — the paper's §III Q2 reports 53.8% of its
//! sequences carry a conditional, the lowest of the four suites. We
//! shape these services accordingly: larger app-logic budgets, chains
//! of sequential RPC calls, and low compressed-payload probabilities.

use accelflow_core::request::{CallSpec, CyclesDist, FlagProbs, ServiceSpec, SizeDist, StageSpec};
use accelflow_trace::builder::TraceBuilder;
use accelflow_trace::kind::AccelKind::{Encr, Ser, Tcp};
use accelflow_trace::templates::TemplateId;

fn app(median_cycles: f64) -> StageSpec {
    StageSpec::Cpu(CyclesDist::new(median_cycles, 0.4))
}

/// Low-branch flags: mostly uncompressed payloads and warm caches, so
/// many sequences resolve with no conditional work.
fn tt_flags() -> FlagProbs {
    FlagProbs {
        compressed: 0.12,
        hit: 0.9,
        found: 0.99,
        exception: 0.008,
        cache_compressed: 0.1,
    }
}

fn call(template: TemplateId) -> CallSpec {
    CallSpec::new(template)
        .with_flags(tt_flags())
        .with_payload(SizeDist::new(1_700.0, 0.6, 24 * 1024))
}

/// A fire-and-forget audit/log message (Train Ticket logs every
/// operation to its tracing stack): serialize, encrypt, send — no
/// response trace, no branches.
fn async_log() -> CallSpec {
    let trace = TraceBuilder::new("audit_log")
        .seq([Ser, Encr, Tcp])
        .to_cpu()
        .build();
    let mut spec = CallSpec::custom(trace);
    spec.payload = SizeDist::new(700.0, 0.5, 8 * 1024);
    spec
}

/// Query available trains: route + price lookups.
pub fn query_trip() -> ServiceSpec {
    ServiceSpec::new(
        "QueryTrip",
        vec![
            StageSpec::Call(call(TemplateId::T1)),
            app(140_000.0),
            StageSpec::Call(call(TemplateId::T9)), // route service
            app(80_000.0),
            StageSpec::Call(call(TemplateId::T9)), // price service
            app(60_000.0),
            StageSpec::Call(async_log()),
            StageSpec::Call(call(TemplateId::T2)),
        ],
    )
}

/// Book a ticket: seat allocation, order write, payment RPC.
pub fn book_ticket() -> ServiceSpec {
    ServiceSpec::new(
        "BookTicket",
        vec![
            StageSpec::Call(call(TemplateId::T1)),
            app(160_000.0),
            StageSpec::Call(call(TemplateId::T4)), // seat-map read
            app(90_000.0),
            StageSpec::Call(call(TemplateId::T8)), // order write
            app(70_000.0),
            StageSpec::Call(call(TemplateId::T9)), // payment service
            app(50_000.0),
            StageSpec::Call(async_log()),
            StageSpec::Call(async_log()),
            StageSpec::Call(call(TemplateId::T2)),
        ],
    )
}

/// Check an order's status: one cached read.
pub fn order_status() -> ServiceSpec {
    ServiceSpec::new(
        "OrderStatus",
        vec![
            StageSpec::Call(call(TemplateId::T1)),
            app(70_000.0),
            StageSpec::Call(call(TemplateId::T4)),
            app(35_000.0),
            StageSpec::Call(async_log()),
            StageSpec::Call(call(TemplateId::T2)),
        ],
    )
}

/// Cancel an order: order write plus refund RPC.
pub fn cancel_order() -> ServiceSpec {
    ServiceSpec::new(
        "CancelOrder",
        vec![
            StageSpec::Call(call(TemplateId::T1)),
            app(110_000.0),
            StageSpec::Call(call(TemplateId::T8)),
            app(60_000.0),
            StageSpec::Call(call(TemplateId::T9)),
            app(40_000.0),
            StageSpec::Call(async_log()),
            StageSpec::Call(call(TemplateId::T2)),
        ],
    )
}

/// The Train-Ticket-like mix.
pub fn all() -> Vec<ServiceSpec> {
    vec![query_trip(), book_ticket(), order_status(), cancel_order()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelflow_accel::timing::ServiceTimeModel;
    use accelflow_sim::rng::SimRng;
    use accelflow_sim::time::Frequency;
    use accelflow_trace::templates::TraceLibrary;

    fn branch_fraction(services: &[ServiceSpec]) -> f64 {
        let lib = TraceLibrary::standard();
        let timing = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
        let mut rng = SimRng::seed(21);
        let (mut with, mut total) = (0usize, 0usize);
        for svc in services {
            for i in 0..120u64 {
                let p = svc.sample(&lib, &timing, &mut rng, i << 36);
                for c in p.calls() {
                    for seg in &c.segments {
                        total += 1;
                        if seg.hops.iter().any(|h| h.branches_after > 0) {
                            with += 1;
                        }
                    }
                }
            }
        }
        with as f64 / total as f64
    }

    #[test]
    fn four_services() {
        assert_eq!(all().len(), 4);
        for s in all() {
            assert!(s.stages.len() >= 3, "{}", s.name);
        }
    }

    #[test]
    fn least_branchy_of_the_suites() {
        // §III Q2: TrainTicket 53.8% < SocialNet 69.2% < Media 82.5%.
        let tt = branch_fraction(&all());
        let social = branch_fraction(&crate::socialnetwork::all());
        let media = branch_fraction(&crate::suites::media_services());
        assert!(tt < social, "TrainTicket {tt:.3} vs SocialNet {social:.3}");
        assert!(tt < media, "TrainTicket {tt:.3} vs Media {media:.3}");
        assert!(tt > 0.2, "still a substantial branchy fraction: {tt:.3}");
    }

    #[test]
    fn app_logic_is_heavier_than_socialnetwork() {
        let lib = TraceLibrary::standard();
        let timing = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
        let avg_app = |services: &[ServiceSpec]| {
            let mut rng = SimRng::seed(8);
            let mut total = 0.0;
            let mut n = 0usize;
            for svc in services {
                for i in 0..60u64 {
                    total += svc.sample(&lib, &timing, &mut rng, i << 36).app_cycles();
                    n += 1;
                }
            }
            total / n as f64
        };
        assert!(avg_app(&all()) > avg_app(&crate::socialnetwork::all()));
    }
}
