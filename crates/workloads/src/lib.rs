//! Workloads for the AccelFlow evaluation (paper §VI "Applications").
//!
//! The paper runs 8 SocialNetwork services from DeathStarBench with
//! Alibaba production invocation rates, plus HotelReservation and
//! MediaServices for the load sweeps, FunctionBench serverless
//! functions with Azure invocation traces, and the RELIEF gem5 suite
//! of coarse-grain image/RNN applications. We cannot ship those
//! artifacts, so this crate provides calibrated synthetic equivalents
//! (substitutions documented in DESIGN.md §2):
//!
//! - [`socialnetwork`] — the 8 services with their Table IV paths.
//! - [`suites`] — HotelReservation-like and MediaServices-like mixes.
//! - [`arrivals`] — bursty Alibaba-like and Azure-like arrival
//!   generators (Markov-modulated Poisson).
//! - [`openloop`] — composable open-loop arrival processes (diurnal
//!   cycles, flash crowds, correlated bursts, cold-start storms) via
//!   the [`openloop::ArrivalProcess`] trait (docs/WORKLOADS.md).
//! - [`serverless`] — FunctionBench-like functions (Fig 16).
//! - [`relief_suite`] — coarse-grain accelerator chains standing in
//!   for the RELIEF gem5 image-processing/RNN applications (Fig 15).
//! - [`trainticket`] — Train-Ticket-like services (heavier app logic,
//!   the least-branchy suite of §III Q2).
//! - [`musuite`] — µSuite-like mid-tier/leaf services (the most
//!   tax-dominated suite).
//! - [`config`] / [`json`] — JSON workload files: describe a service
//!   mix without writing Rust.

#![warn(missing_docs)]

pub mod arrivals;
pub mod config;
pub mod json;
pub mod musuite;
pub mod openloop;
pub mod relief_suite;
pub mod serverless;
pub mod socialnetwork;
pub mod suites;
pub mod trainticket;

pub use arrivals::{alibaba_like_arrivals, azure_like_arrivals, BurstyProfile};
pub use openloop::{openloop_arrivals, ArrivalProcess};
