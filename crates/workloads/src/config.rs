//! Workload configuration files: describe a service mix in JSON, load
//! it as [`ServiceSpec`]s, and save built-in mixes back out.
//!
//! A downstream user points the simulator at their own services
//! without writing Rust:
//!
//! ```json
//! [
//!   {
//!     "name": "Checkout",
//!     "tenant": 1,
//!     "stages": [
//!       { "call": { "template": "T1" } },
//!       { "cpu": { "median_cycles": 50000, "sigma": 0.3 } },
//!       { "parallel": [ { "call": { "template": "T9", "cmp_prob": 0.5 } },
//!                        { "call": { "template": "T9" } } ] },
//!       { "call": { "template": "T2" } }
//!     ]
//!   }
//! ]
//! ```

use accelflow_accel::queue::TenantId;
use accelflow_core::request::{
    CallSpec, CyclesDist, ExternalSpec, FlagProbs, ServiceSpec, SizeDist, StageSpec,
};
use accelflow_sim::time::SimDuration;
use accelflow_trace::templates::TemplateId;

use crate::json::{parse, ParseError, Value};

/// An error loading a workload config.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// The JSON itself is malformed.
    Json(ParseError),
    /// The JSON is valid but not a workload description.
    Shape(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Json(e) => write!(f, "{e}"),
            ConfigError::Shape(s) => write!(f, "config shape error: {s}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ParseError> for ConfigError {
    fn from(e: ParseError) -> Self {
        ConfigError::Json(e)
    }
}

fn shape<T>(msg: impl Into<String>) -> Result<T, ConfigError> {
    Err(ConfigError::Shape(msg.into()))
}

fn num(v: &Value, key: &str, default: f64) -> Result<f64, ConfigError> {
    match v.get(key) {
        None => Ok(default),
        Some(Value::Num(n)) => Ok(*n),
        Some(_) => shape(format!("'{key}' must be a number")),
    }
}

/// Parses a template name like `"T9"`.
fn template(name: &str) -> Result<TemplateId, ConfigError> {
    TemplateId::ALL
        .into_iter()
        .find(|t| t.name() == name)
        .ok_or_else(|| ConfigError::Shape(format!("unknown template '{name}'")))
}

fn call_spec(v: &Value) -> Result<CallSpec, ConfigError> {
    let name = v
        .get("template")
        .and_then(Value::as_str)
        .ok_or_else(|| ConfigError::Shape("call needs a 'template' name".into()))?;
    let mut spec = CallSpec::new(template(name)?);
    spec.cmp_variant_prob = num(v, "cmp_prob", spec.cmp_variant_prob)?;
    if let Some(p) = v.get("payload") {
        spec.payload = SizeDist::new(
            num(p, "median", 2048.0)?,
            num(p, "sigma", 0.7)?,
            num(p, "max", 32.0 * 1024.0)? as u64,
        );
    }
    if let Some(f) = v.get("flags") {
        spec.flags = FlagProbs {
            compressed: num(f, "compressed", 0.3)?,
            hit: num(f, "hit", 0.8)?,
            found: num(f, "found", 0.97)?,
            exception: num(f, "exception", 0.01)?,
            cache_compressed: num(f, "cache_compressed", 0.25)?,
        };
    }
    if let Some(e) = v.get("external") {
        spec.external = ExternalSpec::new(
            SimDuration::from_micros_f64(num(e, "median_us", 20.0)?),
            num(e, "sigma", 0.4)?,
        );
    }
    Ok(spec)
}

fn stage(v: &Value) -> Result<StageSpec, ConfigError> {
    if let Some(cpu) = v.get("cpu") {
        return Ok(StageSpec::Cpu(CyclesDist::new(
            num(cpu, "median_cycles", 50_000.0)?,
            num(cpu, "sigma", 0.35)?,
        )));
    }
    if let Some(call) = v.get("call") {
        return Ok(StageSpec::Call(call_spec(call)?));
    }
    if let Some(parallel) = v.get("parallel") {
        let items = parallel
            .as_arr()
            .ok_or_else(|| ConfigError::Shape("'parallel' must be an array".into()))?;
        if items.is_empty() {
            return shape("'parallel' must not be empty");
        }
        let calls = items
            .iter()
            .map(|item| {
                item.get("call")
                    .ok_or_else(|| ConfigError::Shape("parallel items need 'call'".into()))
                    .and_then(call_spec)
            })
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(StageSpec::Parallel(calls));
    }
    shape("stage must be one of 'cpu', 'call', 'parallel'")
}

fn service(v: &Value) -> Result<ServiceSpec, ConfigError> {
    let name = v
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| ConfigError::Shape("service needs a 'name'".into()))?;
    let stages = v
        .get("stages")
        .and_then(Value::as_arr)
        .ok_or_else(|| ConfigError::Shape(format!("service '{name}' needs 'stages'")))?;
    if stages.is_empty() {
        return shape(format!("service '{name}' has no stages"));
    }
    let mut spec = ServiceSpec::new(name, stages.iter().map(stage).collect::<Result<_, _>>()?);
    spec.tenant = TenantId(num(v, "tenant", 0.0)? as u16);
    spec.priority = num(v, "priority", 0.0)? as u8;
    if let Some(Value::Num(slack)) = v.get("slo_slack") {
        spec.slo_slack = Some(*slack);
    }
    Ok(spec)
}

/// Loads a service mix from JSON text.
///
/// # Errors
///
/// Returns a [`ConfigError`] for malformed JSON or an unexpected shape.
///
/// # Example
///
/// ```
/// let json = r#"[{"name": "Ping", "stages": [
///     {"call": {"template": "T1"}},
///     {"cpu": {"median_cycles": 10000}},
///     {"call": {"template": "T2"}}
/// ]}]"#;
/// let services = accelflow_workloads::config::load_services(json).unwrap();
/// assert_eq!(services.len(), 1);
/// assert_eq!(services[0].name, "Ping");
/// ```
pub fn load_services(json: &str) -> Result<Vec<ServiceSpec>, ConfigError> {
    let root = parse(json)?;
    let list = root
        .as_arr()
        .ok_or_else(|| ConfigError::Shape("top level must be an array of services".into()))?;
    list.iter().map(service).collect()
}

/// Serializes a service mix to JSON (the inverse of
/// [`load_services`], up to default-valued fields).
pub fn save_services(services: &[ServiceSpec]) -> String {
    let svc_value = |svc: &ServiceSpec| {
        let stage_value = |st: &StageSpec| match st {
            StageSpec::Cpu(c) => Value::obj([(
                "cpu",
                Value::obj([
                    ("median_cycles", Value::Num(c.median)),
                    ("sigma", Value::Num(c.sigma)),
                ]),
            )]),
            StageSpec::Call(c) => Value::obj([("call", call_value(c))]),
            StageSpec::Parallel(calls) => Value::obj([(
                "parallel",
                Value::Arr(
                    calls
                        .iter()
                        .map(|c| Value::obj([("call", call_value(c))]))
                        .collect(),
                ),
            )]),
        };
        let mut fields = vec![
            ("name", Value::Str(svc.name.clone())),
            ("tenant", Value::Num(svc.tenant.0 as f64)),
            ("priority", Value::Num(svc.priority as f64)),
            (
                "stages",
                Value::Arr(svc.stages.iter().map(stage_value).collect()),
            ),
        ];
        if let Some(slack) = svc.slo_slack {
            fields.push(("slo_slack", Value::Num(slack)));
        }
        Value::obj(fields)
    };
    Value::Arr(services.iter().map(svc_value).collect()).pretty()
}

fn call_value(c: &CallSpec) -> Value {
    Value::obj([
        ("template", Value::Str(c.template.name().to_string())),
        ("cmp_prob", Value::Num(c.cmp_variant_prob)),
        (
            "payload",
            Value::obj([
                ("median", Value::Num(c.payload.median)),
                ("sigma", Value::Num(c.payload.sigma)),
                ("max", Value::Num(c.payload.max as f64)),
            ]),
        ),
        (
            "flags",
            Value::obj([
                ("compressed", Value::Num(c.flags.compressed)),
                ("hit", Value::Num(c.flags.hit)),
                ("found", Value::Num(c.flags.found)),
                ("exception", Value::Num(c.flags.exception)),
                ("cache_compressed", Value::Num(c.flags.cache_compressed)),
            ]),
        ),
        (
            "external",
            Value::obj([
                ("median_us", Value::Num(c.external.median.as_micros_f64())),
                ("sigma", Value::Num(c.external.sigma)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_a_minimal_service() {
        let json = r#"[{"name": "Ping", "stages": [
            {"call": {"template": "T1"}},
            {"cpu": {"median_cycles": 10000}},
            {"call": {"template": "T2"}}
        ]}]"#;
        let services = load_services(json).unwrap();
        assert_eq!(services.len(), 1);
        assert_eq!(services[0].name, "Ping");
        assert_eq!(services[0].stages.len(), 3);
    }

    #[test]
    fn loads_full_options() {
        let json = r#"[{"name": "Rich", "tenant": 3, "priority": 5, "slo_slack": 4.5,
            "stages": [
              {"call": {"template": "T9", "cmp_prob": 0.4,
                        "payload": {"median": 4096, "sigma": 0.5, "max": 65536},
                        "flags": {"compressed": 0.9, "hit": 0.5, "found": 1.0,
                                  "exception": 0.0, "cache_compressed": 0.0},
                        "external": {"median_us": 75, "sigma": 0.2}}},
              {"parallel": [{"call": {"template": "T8"}}, {"call": {"template": "T8"}}]}
        ]}]"#;
        let services = load_services(json).unwrap();
        let svc = &services[0];
        assert_eq!(svc.tenant.0, 3);
        assert_eq!(svc.priority, 5);
        assert_eq!(svc.slo_slack, Some(4.5));
        match &svc.stages[0] {
            StageSpec::Call(c) => {
                assert_eq!(c.template.name(), "T9");
                assert_eq!(c.cmp_variant_prob, 0.4);
                assert_eq!(c.payload.max, 65536);
                assert_eq!(c.flags.compressed, 0.9);
                assert!((c.external.median.as_micros_f64() - 75.0).abs() < 1e-9);
            }
            other => panic!("expected call, got {other:?}"),
        }
        match &svc.stages[1] {
            StageSpec::Parallel(calls) => assert_eq!(calls.len(), 2),
            other => panic!("expected parallel, got {other:?}"),
        }
    }

    #[test]
    fn save_load_roundtrip_preserves_structure() {
        let services = crate::socialnetwork::all();
        let json = save_services(&services);
        let back = load_services(&json).unwrap();
        assert_eq!(back.len(), services.len());
        for (a, b) in services.iter().zip(&back) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.stages.len(), b.stages.len(), "{}", a.name);
        }
        // Note: custom traces (relief_suite) are not expressible in
        // configs — only template calls round-trip.
    }

    #[test]
    fn helpful_shape_errors() {
        assert!(matches!(load_services("{}"), Err(ConfigError::Shape(_))));
        let err = load_services(r#"[{"name": "X", "stages": [{"call": {"template": "T99"}}]}]"#)
            .unwrap_err();
        assert!(err.to_string().contains("T99"));
        let err = load_services(r#"[{"stages": []}]"#).unwrap_err();
        assert!(err.to_string().contains("name"));
        let err = load_services(r#"[{"name": "X", "stages": [{"dance": {}}]}]"#).unwrap_err();
        assert!(err.to_string().contains("one of"));
        assert!(matches!(load_services("[oops"), Err(ConfigError::Json(_))));
    }

    #[test]
    fn loaded_services_run_on_the_machine() {
        use accelflow_core::machine::{Machine, MachineConfig};
        use accelflow_core::policy::Policy;

        let json = save_services(&[crate::socialnetwork::uniq_id()]);
        let services = load_services(&json).unwrap();
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(1);
        let report = Machine::run_workload(&cfg, &services, 500.0, SimDuration::from_millis(20), 3);
        assert!(report.completion_ratio() > 0.99);
    }
}
