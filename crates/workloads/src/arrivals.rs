//! Bursty arrival-trace generators.
//!
//! The paper drives the Fig 11/13 experiments with Alibaba's production
//! invocation traces (average 13.4 kRPS per service) and the Fig 16
//! serverless experiment with Microsoft Azure traces. Both are bursty:
//! rates swing over seconds and sub-seconds. We substitute
//! Markov-modulated Poisson processes (MMPP) whose states and dwell
//! times are tuned to produce the same qualitative burstiness (see
//! DESIGN.md §2); tail-latency separation between orchestrators comes
//! from exactly this burstiness.

use accelflow_accel::timing::ServiceTimeModel;
use accelflow_core::arrivals::Arrival;
use accelflow_core::request::{ServiceId, ServiceSpec};
use accelflow_sim::rng::SimRng;
use accelflow_sim::time::{SimDuration, SimTime};
use accelflow_trace::templates::TraceLibrary;

/// A burstiness profile: a set of rate multipliers and how long the
/// process dwells in each before re-drawing.
#[derive(Clone, Debug)]
pub struct BurstyProfile {
    /// Rate multipliers relative to the mean rate.
    pub states: Vec<f64>,
    /// Probability weight of each state.
    pub weights: Vec<f64>,
    /// Mean dwell time in a state.
    pub dwell: SimDuration,
}

impl BurstyProfile {
    /// Alibaba-like: mostly steady with regular surges (the paper's
    /// microservice invocation traces show diurnal plus bursty
    /// sub-second behavior; we reproduce the sub-second part).
    pub fn alibaba_like() -> Self {
        BurstyProfile {
            states: vec![0.5, 0.9, 1.35, 2.1],
            weights: vec![0.28, 0.42, 0.22, 0.08],
            dwell: SimDuration::from_millis(8),
        }
    }

    /// Azure-like serverless: long idle-ish stretches punctuated by
    /// sharp invocation storms (heavier burst state).
    pub fn azure_like() -> Self {
        BurstyProfile {
            states: vec![0.15, 0.7, 1.2, 5.5],
            weights: vec![0.35, 0.35, 0.22, 0.08],
            dwell: SimDuration::from_millis(20),
        }
    }

    /// Validates that the profile's mean multiplier is ~1.0 so the
    /// requested mean rate is respected.
    pub fn mean_multiplier(&self) -> f64 {
        let wsum: f64 = self.weights.iter().sum();
        self.states
            .iter()
            .zip(&self.weights)
            .map(|(s, w)| s * w / wsum)
            .sum()
    }
}

/// A shared burst timeline: production surges hit the whole machine at
/// once (a traffic spike raises the load of every colocated service),
/// so one modulation sequence drives all services.
fn burst_timeline(
    profile: &BurstyProfile,
    duration: SimDuration,
    rng: &mut SimRng,
) -> Vec<(SimTime, SimTime, f64)> {
    let norm = profile.mean_multiplier();
    let mut segments = Vec::new();
    let mut t = SimTime::ZERO;
    let end = SimTime::ZERO + duration;
    while t < end {
        let state = profile.states[rng.weighted_index(&profile.weights)] / norm;
        let dwell = SimDuration::from_micros_f64(rng.exponential(profile.dwell.as_micros_f64()));
        let seg_end = (t + dwell).min(end);
        segments.push((t, seg_end, state));
        t = seg_end;
    }
    segments
}

/// Generates one service's arrivals along a shared burst timeline.
#[allow(clippy::too_many_arguments)]
fn mmpp_arrivals(
    svc: &ServiceSpec,
    idx: usize,
    lib: &TraceLibrary,
    timing: &ServiceTimeModel,
    mean_rps: f64,
    timeline: &[(SimTime, SimTime, f64)],
    rng: &mut SimRng,
    counter: &mut u64,
) -> Vec<Arrival> {
    let mut arrivals = Vec::new();
    for &(start, seg_end, state) in timeline {
        let rate = mean_rps * state;
        if rate <= 0.0 {
            continue;
        }
        let mean_gap_us = 1e6 / rate;
        let mut t = start;
        loop {
            let gap = SimDuration::from_micros_f64(rng.exponential(mean_gap_us));
            if t + gap >= seg_end {
                break;
            }
            t += gap;
            *counter += 1;
            let buffer = (*counter % accelflow_core::arrivals::BUFFER_POOL) << 24;
            arrivals.push(Arrival {
                at: t,
                service: ServiceId(idx),
                tenant: svc.tenant,
                program: svc.sample(lib, timing, rng, buffer),
            });
        }
    }
    arrivals
}

/// Alibaba-like bursty arrivals for a service mix, `mean_rps` per
/// service (the paper's average is 13.4 kRPS).
pub fn alibaba_like_arrivals(
    services: &[ServiceSpec],
    lib: &TraceLibrary,
    timing: &ServiceTimeModel,
    mean_rps: f64,
    duration: SimDuration,
    seed: u64,
) -> Vec<Arrival> {
    bursty_arrivals(
        services,
        lib,
        timing,
        mean_rps,
        duration,
        seed,
        &BurstyProfile::alibaba_like(),
    )
}

/// Azure-like bursty arrivals (Fig 16's serverless experiment).
pub fn azure_like_arrivals(
    services: &[ServiceSpec],
    lib: &TraceLibrary,
    timing: &ServiceTimeModel,
    mean_rps: f64,
    duration: SimDuration,
    seed: u64,
) -> Vec<Arrival> {
    bursty_arrivals(
        services,
        lib,
        timing,
        mean_rps,
        duration,
        seed,
        &BurstyProfile::azure_like(),
    )
}

/// Bursty arrivals under an explicit profile.
pub fn bursty_arrivals(
    services: &[ServiceSpec],
    lib: &TraceLibrary,
    timing: &ServiceTimeModel,
    mean_rps: f64,
    duration: SimDuration,
    seed: u64,
    profile: &BurstyProfile,
) -> Vec<Arrival> {
    let mut master = SimRng::seed(seed);
    let mut timeline_rng = master.fork(0xB00);
    let timeline = burst_timeline(profile, duration, &mut timeline_rng);
    let mut counter = 0u64;
    let mut all = Vec::new();
    for (idx, svc) in services.iter().enumerate() {
        let mut rng = master.fork(idx as u64);
        all.extend(mmpp_arrivals(
            svc,
            idx,
            lib,
            timing,
            mean_rps,
            &timeline,
            &mut rng,
            &mut counter,
        ));
    }
    all.sort_by_key(|a| a.at);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::socialnetwork;
    use accelflow_sim::time::Frequency;

    fn fixtures() -> (TraceLibrary, ServiceTimeModel) {
        (
            TraceLibrary::standard(),
            ServiceTimeModel::calibrated(Frequency::from_ghz(2.4)),
        )
    }

    #[test]
    fn profiles_have_unit_mean() {
        for p in [BurstyProfile::alibaba_like(), BurstyProfile::azure_like()] {
            let m = p.mean_multiplier();
            assert!((m - 1.0).abs() < 0.05, "mean multiplier {m}");
        }
    }

    #[test]
    fn mean_rate_is_respected() {
        let (lib, timing) = fixtures();
        let services = vec![socialnetwork::uniq_id()];
        let dur = SimDuration::from_millis(2_000);
        let arr = alibaba_like_arrivals(&services, &lib, &timing, 1_000.0, dur, 5);
        let rate = arr.len() as f64 / dur.as_secs_f64();
        assert!((rate - 1_000.0).abs() / 1_000.0 < 0.15, "rate {rate}");
    }

    #[test]
    fn arrivals_are_sorted_and_bursty() {
        let (lib, timing) = fixtures();
        let services = vec![socialnetwork::uniq_id(), socialnetwork::login()];
        let dur = SimDuration::from_millis(500);
        let arr = alibaba_like_arrivals(&services, &lib, &timing, 2_000.0, dur, 9);
        for w in arr.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        // Burstiness: the per-10ms bucket counts must vary much more
        // than Poisson (index of dispersion >> 1).
        let bucket = SimDuration::from_millis(10);
        let buckets = (dur.as_picos() / bucket.as_picos()) as usize;
        let mut counts = vec![0f64; buckets];
        for a in &arr {
            let b = ((a.at.as_picos()) / bucket.as_picos()) as usize;
            counts[b.min(buckets - 1)] += 1.0;
        }
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / counts.len() as f64;
        let dispersion = var / mean;
        assert!(
            dispersion > 2.0,
            "dispersion {dispersion} (Poisson would be ~1)"
        );
    }

    #[test]
    fn azure_is_burstier_than_alibaba() {
        let a = BurstyProfile::alibaba_like();
        let z = BurstyProfile::azure_like();
        let peak = |p: &BurstyProfile| {
            p.states.iter().cloned().fold(0.0f64, f64::max) / p.mean_multiplier()
        };
        assert!(peak(&z) > peak(&a));
    }

    #[test]
    fn deterministic_per_seed() {
        let (lib, timing) = fixtures();
        let services = vec![socialnetwork::uniq_id()];
        let dur = SimDuration::from_millis(100);
        let a = alibaba_like_arrivals(&services, &lib, &timing, 500.0, dur, 42);
        let b = alibaba_like_arrivals(&services, &lib, &timing, 500.0, dur, 42);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.at == y.at));
    }
}
