//! HotelReservation-like and MediaServices-like service mixes
//! (DeathStarBench), used by the Fig 12 load sweep and the §III Q2
//! branch statistics.
//!
//! These suites reuse the T1–T12 template library with paths and
//! parameters shaped after the respective applications: Hotel is
//! search/geo/rate/reserve (cache-heavy reads, small payloads); Media
//! is review/plot/rent (larger payloads, more compression).

use accelflow_core::request::{CallSpec, CyclesDist, FlagProbs, ServiceSpec, SizeDist, StageSpec};
use accelflow_trace::templates::TemplateId;

fn app(median_cycles: f64) -> StageSpec {
    StageSpec::Cpu(CyclesDist::new(median_cycles, 0.35))
}

/// HotelReservation-like services.
pub fn hotel_reservation() -> Vec<ServiceSpec> {
    let read_flags = FlagProbs {
        compressed: 0.2,
        hit: 0.9,
        found: 0.98,
        exception: 0.01,
        cache_compressed: 0.2,
    };
    vec![
        ServiceSpec::new(
            "Search",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1)),
                app(70_000.0),
                StageSpec::Parallel(vec![
                    CallSpec::new(TemplateId::T9).with_cmp_prob(0.2),
                    CallSpec::new(TemplateId::T9).with_cmp_prob(0.2),
                ]),
                app(40_000.0),
                StageSpec::Call(CallSpec::new(TemplateId::T3)),
            ],
        ),
        ServiceSpec::new(
            "Geo",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1).with_payload(SizeDist::new(
                    900.0,
                    0.5,
                    8 * 1024,
                ))),
                app(30_000.0),
                StageSpec::Call(CallSpec::new(TemplateId::T4).with_flags(read_flags)),
                app(15_000.0),
                StageSpec::Call(CallSpec::new(TemplateId::T2)),
            ],
        ),
        ServiceSpec::new(
            "Rate",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1)),
                app(35_000.0),
                StageSpec::Call(CallSpec::new(TemplateId::T4).with_flags(read_flags)),
                app(20_000.0),
                StageSpec::Call(CallSpec::new(TemplateId::T2)),
            ],
        ),
        ServiceSpec::new(
            "Reserve",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1)),
                app(50_000.0),
                StageSpec::Call(CallSpec::new(TemplateId::T8).with_cmp_prob(0.3)),
                app(25_000.0),
                StageSpec::Call(CallSpec::new(TemplateId::T9)),
                app(15_000.0),
                StageSpec::Call(CallSpec::new(TemplateId::T2)),
            ],
        ),
    ]
}

/// MediaServices-like services.
pub fn media_services() -> Vec<ServiceSpec> {
    let big = SizeDist::new(6_000.0, 0.9, 128 * 1024);
    let cmp_heavy = FlagProbs {
        compressed: 0.7,
        hit: 0.8,
        found: 0.97,
        exception: 0.01,
        cache_compressed: 0.4,
    };
    vec![
        ServiceSpec::new(
            "ComposeReview",
            vec![
                StageSpec::Call(
                    CallSpec::new(TemplateId::T1)
                        .with_payload(big)
                        .with_flags(cmp_heavy),
                ),
                app(90_000.0),
                StageSpec::Parallel(vec![CallSpec::new(TemplateId::T9).with_cmp_prob(0.6); 3]),
                app(50_000.0),
                StageSpec::Call(CallSpec::new(TemplateId::T3).with_payload(big)),
            ],
        ),
        ServiceSpec::new(
            "ReadPlot",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1)),
                app(40_000.0),
                StageSpec::Call(
                    CallSpec::new(TemplateId::T4)
                        .with_flags(cmp_heavy)
                        .with_payload(big),
                ),
                app(20_000.0),
                StageSpec::Call(CallSpec::new(TemplateId::T3).with_payload(big)),
            ],
        ),
        ServiceSpec::new(
            "RentMovie",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1)),
                app(60_000.0),
                StageSpec::Call(CallSpec::new(TemplateId::T11).with_cmp_prob(0.4)),
                app(30_000.0),
                StageSpec::Call(CallSpec::new(TemplateId::T8).with_cmp_prob(0.5)),
                app(20_000.0),
                StageSpec::Call(CallSpec::new(TemplateId::T2)),
            ],
        ),
    ]
}

/// The full DeathStarBench-like mix used by the Fig 12 load sweep.
pub fn deathstarbench() -> Vec<ServiceSpec> {
    let mut all = crate::socialnetwork::all();
    all.extend(hotel_reservation());
    all.extend(media_services());
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelflow_accel::timing::ServiceTimeModel;
    use accelflow_sim::rng::SimRng;
    use accelflow_sim::time::Frequency;
    use accelflow_trace::templates::TraceLibrary;

    #[test]
    fn suites_are_well_formed() {
        assert_eq!(hotel_reservation().len(), 4);
        assert_eq!(media_services().len(), 3);
        assert_eq!(deathstarbench().len(), 15);
        for svc in deathstarbench() {
            assert!(!svc.stages.is_empty(), "{}", svc.name);
        }
    }

    #[test]
    fn media_uses_bigger_payloads_than_hotel() {
        let lib = TraceLibrary::standard();
        let timing = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
        // Compare the entry payloads of each call (compression inside
        // a trace deliberately shrinks mid-trace hops).
        let avg_entry_bytes = |services: Vec<ServiceSpec>| {
            let mut rng = SimRng::seed(3);
            let mut total = 0u64;
            let mut calls = 0u64;
            for round in 0..20u64 {
                for (i, svc) in services.iter().enumerate() {
                    let p = svc.sample(&lib, &timing, &mut rng, (round * 64 + i as u64) << 40);
                    for call in p.calls() {
                        total += call.segments[0].hops[0].in_bytes;
                        calls += 1;
                    }
                }
            }
            total as f64 / calls as f64
        };
        let hotel = avg_entry_bytes(hotel_reservation());
        let media = avg_entry_bytes(media_services());
        assert!(media > hotel * 1.3, "media {media} vs hotel {hotel}");
    }

    #[test]
    fn branch_fractions_match_q2_ordering() {
        // §III Q2: Hotel 62.5%, Media 82.5% of sequences have ≥1
        // conditional — Media must be branchier than Hotel.
        let lib = TraceLibrary::standard();
        let timing = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
        let frac = |services: Vec<ServiceSpec>| {
            let mut rng = SimRng::seed(11);
            let (mut with, mut total) = (0usize, 0usize);
            for svc in &services {
                for i in 0..80 {
                    let p = svc.sample(&lib, &timing, &mut rng, (i as u64) << 36);
                    for call in p.calls() {
                        for seg in &call.segments {
                            total += 1;
                            if seg.hops.iter().any(|h| h.branches_after > 0) {
                                with += 1;
                            }
                        }
                    }
                }
            }
            with as f64 / total as f64
        };
        let hotel = frac(hotel_reservation());
        let media = frac(media_services());
        assert!(hotel > 0.3, "hotel branch fraction {hotel}");
        assert!(media > 0.3, "media branch fraction {media}");
    }
}
