//! Coarse-grain accelerator chains standing in for the RELIEF gem5
//! benchmark suite (paper §VII-A4, Fig 15).
//!
//! The paper validates AccelFlow by re-running RELIEF's artifact —
//! image-processing and RNN applications over seven coarse-grain gem5
//! accelerators with fixed chains. We cannot ship gem5 models, so we
//! build the closest synthetic equivalent (DESIGN.md §2): fixed,
//! branch-free chains of *coarse* operations (hundreds-of-KB payloads,
//! hundreds-of-µs kernels) expressed as custom traces over the
//! existing accelerator stations. What Fig 15 measures — how much a
//! centralized manager (~1.5 µs per completion) costs relative to
//! direct chaining when each stage is long — depends only on the chain
//! shape and stage durations, which this substitution preserves.

use accelflow_core::request::{CallSpec, CyclesDist, ServiceSpec, SizeDist, StageSpec};
use accelflow_trace::builder::TraceBuilder;
use accelflow_trace::ir::Trace;
use accelflow_trace::kind::AccelKind;

/// Payloads for the coarse-grain suite: ~200 KB frames/tensors.
fn coarse_payload() -> SizeDist {
    SizeDist::new(200_000.0, 0.3, 1 << 20)
}

fn coarse_call(trace: Trace) -> CallSpec {
    CallSpec::custom(trace).with_payload(coarse_payload())
}

/// An image-processing pipeline: ingest → decompress (decode) →
/// deserialize (demosaic/convert) → serialize (filter output) →
/// compress (encode) → egress. Six coarse stages, fixed chain.
pub fn image_pipeline(name: &str, stages: &[AccelKind]) -> ServiceSpec {
    let trace = TraceBuilder::new(format!("{name}_chain"))
        .seq(stages.iter().copied())
        .to_cpu()
        .build();
    ServiceSpec::new(
        name,
        vec![
            StageSpec::Cpu(CyclesDist::new(30_000.0, 0.2)),
            StageSpec::Call(coarse_call(trace)),
            StageSpec::Cpu(CyclesDist::new(20_000.0, 0.2)),
        ],
    )
}

/// The suite: four image-processing apps and two RNN apps, with chain
/// shapes mirroring the RELIEF benchmarks (3–6 fixed stages).
pub fn all() -> Vec<ServiceSpec> {
    use AccelKind::*;
    vec![
        // Image apps: decode → transform(s) → encode.
        image_pipeline("EdgeDetect", &[Dcmp, Dser, Ser, Cmp]),
        image_pipeline("HarrisCorner", &[Dcmp, Dser, Dser, Ser, Cmp]),
        image_pipeline("Grayscale", &[Dcmp, Ser, Cmp]),
        image_pipeline("IspPipeline", &[Dcmp, Dser, Dser, Ser, Ser, Cmp]),
        // RNN apps: fetch weights → layered compute → emit.
        image_pipeline("RnnText", &[Dser, Ser, Dser, Ser]),
        image_pipeline("RnnSpeech", &[Dcmp, Dser, Ser, Dser, Ser]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelflow_accel::timing::ServiceTimeModel;
    use accelflow_sim::rng::SimRng;
    use accelflow_sim::time::Frequency;
    use accelflow_trace::templates::TraceLibrary;

    #[test]
    fn suite_has_six_fixed_chain_apps() {
        let apps = all();
        assert_eq!(apps.len(), 6);
        let lib = TraceLibrary::standard();
        let timing = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
        let mut rng = SimRng::seed(1);
        for (i, app) in apps.iter().enumerate() {
            let p = app.sample(&lib, &timing, &mut rng, (i as u64) << 36);
            let calls: Vec<_> = p.calls().collect();
            assert_eq!(calls.len(), 1, "{}", app.name);
            let seg = &calls[0].segments[0];
            assert!(!seg.entry_is_network, "coarse chains are core-initiated");
            assert!(
                seg.hops.iter().all(|h| h.branches_after == 0),
                "fixed chains have no branches"
            );
            assert!((3..=6).contains(&seg.hops.len()), "{}", app.name);
        }
    }

    #[test]
    fn stages_are_coarse_grained() {
        // RELIEF's accelerators run ms-scale kernels; our stand-ins
        // must be orders of magnitude coarser than the tax ops.
        let lib = TraceLibrary::standard();
        let timing = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
        let mut rng = SimRng::seed(2);
        let p = all()[0].sample(&lib, &timing, &mut rng, 0);
        let call = p.calls().next().unwrap();
        for hop in &call.segments[0].hops {
            let t = timing.accel_time(hop.kind, hop.in_bytes);
            assert!(t.as_micros_f64() > 20.0, "stage {} only {t}", hop.kind);
        }
    }
}
