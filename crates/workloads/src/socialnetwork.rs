//! The eight SocialNetwork services (DeathStarBench), modeled after
//! their Table IV execution paths and calibrated to Fig 1.
//!
//! | Service | Most common path | # accels |
//! |---|---|---|
//! | CPost  | T1-CPU-4x(T9-T10)-CPU-3x(T9-T10)-CPU-T2 | 87 |
//! | ReadH  | T1-CPU-T4-T5-CPU-T9-T10-CPU-T3 | 28 |
//! | StoreP | T1-CPU-T8-T7-CPU-T2 | 18 |
//! | Follow | T1-CPU-3x(T8-T7)-CPU-T2 | 30 |
//! | Login  | T1-CPU-T4-T5-T6-T7-CPU-T2 | 29 |
//! | CUrls  | T1-CPU-T8-T7-CPU-T3 | 19 |
//! | UniqId | T1-CPU-T2 | 9 |
//! | RegUsr | T1-CPU-T8-T7-CPU-T9-T10-CPU-T2 | 25 |
//!
//! App-logic budgets and per-call payload/flag distributions are
//! synthesized (DESIGN.md §5) so the Non-acc breakdown matches Fig 1's
//! averages (AppLogic 20.7%, TCP 25.6%, (De)Encr 14.6%, RPC 3.2%,
//! (De)Ser 22.4%, (De)Cmp 9.5%, LdB 3.9%) and the relative service
//! lengths follow the paper (UniqId short and tax-dominated; CPost the
//! longest with 7 nested RPCs).

use accelflow_core::request::{CallSpec, CyclesDist, FlagProbs, ServiceSpec, SizeDist, StageSpec};
use accelflow_trace::templates::TemplateId;

fn flags(compressed: f64, hit: f64) -> FlagProbs {
    FlagProbs {
        compressed,
        hit,
        found: 0.97,
        exception: 0.01,
        cache_compressed: 0.25,
    }
}

fn app(median_cycles: f64) -> StageSpec {
    StageSpec::Cpu(CyclesDist::new(median_cycles, 0.35))
}

fn call(template: TemplateId) -> CallSpec {
    CallSpec::new(template).with_flags(flags(0.3, 0.85))
}

/// ComposePost: the fan-out heavy service (7 nested RPCs in two
/// waves).
pub fn compose_post() -> ServiceSpec {
    let rpc = || {
        call(TemplateId::T9)
            .with_cmp_prob(0.5)
            .with_payload(SizeDist::new(2600.0, 0.7, 48 * 1024))
    };
    ServiceSpec::new(
        "CPost",
        vec![
            StageSpec::Call(call(TemplateId::T1).with_payload(SizeDist::new(
                3000.0,
                0.7,
                48 * 1024,
            ))),
            app(110_000.0),
            StageSpec::Parallel(vec![rpc(); 4]),
            app(90_000.0),
            StageSpec::Parallel(vec![rpc(); 3]),
            app(70_000.0),
            StageSpec::Call(call(TemplateId::T2)),
        ],
    )
}

/// ReadHomeTimeline: one cached read plus one nested RPC, compressed
/// response.
pub fn read_home_timeline() -> ServiceSpec {
    ServiceSpec::new(
        "ReadH",
        vec![
            StageSpec::Call(call(TemplateId::T1)),
            app(55_000.0),
            StageSpec::Call(call(TemplateId::T4).with_flags(flags(0.35, 0.95))),
            app(30_000.0),
            StageSpec::Call(call(TemplateId::T9).with_cmp_prob(0.3)),
            app(25_000.0),
            StageSpec::Call(call(TemplateId::T3).with_payload(SizeDist::new(
                4200.0,
                0.8,
                64 * 1024,
            ))),
        ],
    )
}

/// StorePost: one DB-cache write.
pub fn store_post() -> ServiceSpec {
    ServiceSpec::new(
        "StoreP",
        vec![
            StageSpec::Call(call(TemplateId::T1).with_flags(flags(0.5, 0.85))),
            app(45_000.0),
            StageSpec::Call(call(TemplateId::T8).with_cmp_prob(0.5)),
            app(22_000.0),
            StageSpec::Call(call(TemplateId::T2)),
        ],
    )
}

/// Follow: three parallel writes (follower/followee/graph edges).
pub fn follow() -> ServiceSpec {
    ServiceSpec::new(
        "Follow",
        vec![
            StageSpec::Call(call(TemplateId::T1)),
            app(40_000.0),
            StageSpec::Parallel(vec![call(TemplateId::T8).with_cmp_prob(0.25); 3]),
            app(25_000.0),
            StageSpec::Call(call(TemplateId::T2)),
        ],
    )
}

/// Login: cache miss forces the DB round trip plus a cache refill —
/// the branch-heavy service (paper: frequent dynamic control flow).
pub fn login() -> ServiceSpec {
    ServiceSpec::new(
        "Login",
        vec![
            StageSpec::Call(call(TemplateId::T1)),
            app(35_000.0),
            // Sessions are cold: the cache essentially never hits, so
            // the chain runs T4-T5(miss)-T6-T7.
            StageSpec::Call(call(TemplateId::T4).with_flags(FlagProbs {
                compressed: 0.3,
                hit: 0.05,
                found: 0.995,
                exception: 0.005,
                cache_compressed: 0.3,
            })),
            app(30_000.0),
            StageSpec::Call(call(TemplateId::T2)),
        ],
    )
}

/// ComposeUrls: shorten-and-store.
pub fn compose_urls() -> ServiceSpec {
    ServiceSpec::new(
        "CUrls",
        vec![
            StageSpec::Call(call(TemplateId::T1).with_payload(SizeDist::new(
                1200.0,
                0.6,
                16 * 1024,
            ))),
            app(38_000.0),
            StageSpec::Call(call(TemplateId::T8).with_cmp_prob(0.4)),
            app(18_000.0),
            StageSpec::Call(call(TemplateId::T3)),
        ],
    )
}

/// UniqueId: the shortest service — pure tax (paper: "the relative
/// weight of tax increases for microservices with short execution
/// times (e.g., UniqId)").
pub fn uniq_id() -> ServiceSpec {
    ServiceSpec::new(
        "UniqId",
        vec![
            StageSpec::Call(
                call(TemplateId::T1)
                    .with_flags(flags(0.05, 0.85))
                    .with_payload(SizeDist::new(600.0, 0.5, 8 * 1024)),
            ),
            app(9_000.0),
            StageSpec::Call(call(TemplateId::T2).with_payload(SizeDist::new(500.0, 0.5, 8 * 1024))),
        ],
    )
}

/// RegisterUser: a write plus a notification RPC.
pub fn register_user() -> ServiceSpec {
    ServiceSpec::new(
        "RegUsr",
        vec![
            StageSpec::Call(call(TemplateId::T1)),
            app(50_000.0),
            StageSpec::Call(call(TemplateId::T8).with_cmp_prob(0.3)),
            app(28_000.0),
            StageSpec::Call(call(TemplateId::T9).with_cmp_prob(0.3)),
            app(20_000.0),
            StageSpec::Call(call(TemplateId::T2)),
        ],
    )
}

/// All eight services, in the paper's order.
pub fn all() -> Vec<ServiceSpec> {
    vec![
        compose_post(),
        read_home_timeline(),
        store_post(),
        follow(),
        login(),
        compose_urls(),
        uniq_id(),
        register_user(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelflow_accel::timing::ServiceTimeModel;
    use accelflow_sim::rng::SimRng;
    use accelflow_sim::time::Frequency;
    use accelflow_trace::templates::TraceLibrary;

    fn mean_invocations(svc: &ServiceSpec, n: usize) -> f64 {
        let lib = TraceLibrary::standard();
        let timing = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
        let mut rng = SimRng::seed(1234);
        let total: usize = (0..n)
            .map(|i| {
                svc.sample(&lib, &timing, &mut rng, (i as u64) << 32)
                    .accelerator_invocations()
            })
            .sum();
        total as f64 / n as f64
    }

    #[test]
    fn eight_services_with_unique_names() {
        let services = all();
        assert_eq!(services.len(), 8);
        let mut names: Vec<&str> = services.iter().map(|s| s.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn invocation_counts_match_table_iv() {
        // Paper Table IV: # accelerators per service invocation.
        // Tolerance ±20% — the counts vary with branch outcomes.
        let expect = [
            (compose_post(), 87.0),
            (read_home_timeline(), 28.0),
            (store_post(), 18.0),
            (follow(), 30.0),
            (login(), 29.0),
            (compose_urls(), 19.0),
            (uniq_id(), 9.0),
            (register_user(), 25.0),
        ];
        for (svc, paper) in expect {
            let got = mean_invocations(&svc, 300);
            let err = (got - paper).abs() / paper;
            assert!(err < 0.20, "{}: paper {paper}, got {got:.1}", svc.name);
        }
    }

    #[test]
    fn paths_match_table_iv() {
        let lib = TraceLibrary::standard();
        assert_eq!(uniq_id().path_string(&lib), "T1-CPU-T2");
        assert_eq!(store_post().path_string(&lib), "T1-CPU-T8-T7-CPU-T2");
        assert_eq!(
            compose_post().path_string(&lib),
            "T1-CPU-4x(T9-T10)-CPU-3x(T9-T10)-CPU-T2"
        );
        assert_eq!(follow().path_string(&lib), "T1-CPU-3x(T8-T7)-CPU-T2");
        assert_eq!(
            register_user().path_string(&lib),
            "T1-CPU-T8-T7-CPU-T9-T10-CPU-T2"
        );
    }

    #[test]
    fn uniq_id_is_shortest_cpost_longest() {
        let uniq = mean_invocations(&uniq_id(), 100);
        let cpost = mean_invocations(&compose_post(), 100);
        for svc in all() {
            let n = mean_invocations(&svc, 100);
            assert!(n >= uniq * 0.95, "{} shorter than UniqId", svc.name);
            assert!(n <= cpost * 1.05, "{} longer than CPost", svc.name);
        }
    }

    #[test]
    fn most_sequences_have_branches() {
        // §III Q2: 69.2% of SocialNetwork accelerator sequences have at
        // least one conditional.
        let lib = TraceLibrary::standard();
        let timing = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
        let mut rng = SimRng::seed(7);
        let mut with_branch = 0usize;
        let mut total = 0usize;
        for svc in all() {
            for i in 0..50 {
                let program = svc.sample(&lib, &timing, &mut rng, (i as u64) << 32);
                for call in program.calls() {
                    for seg in &call.segments {
                        total += 1;
                        if seg.hops.iter().any(|h| h.branches_after > 0) {
                            with_branch += 1;
                        }
                    }
                }
            }
        }
        let frac = with_branch as f64 / total as f64;
        assert!((0.4..0.95).contains(&frac), "branch fraction {frac}");
    }
}
