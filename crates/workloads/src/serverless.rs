//! FunctionBench-like serverless functions (paper §VII-A5, Fig 16).
//!
//! Serverless functions share the properties that make AccelFlow
//! effective: short executions, bursty invocations (Azure traces), and
//! heavy datacenter tax (each invocation enters and leaves through the
//! full TCP/TLS/RPC/serialization stack, often with compressed
//! payloads). We model representative FunctionBench workloads: image
//! rotation, ML model serving, video processing, and document
//! conversion — app-logic-heavy bodies between the ingress (T1) and
//! egress (T2/T3) tax traces, with storage fetches (T11-T12) for the
//! media functions.

use accelflow_core::request::{CallSpec, CyclesDist, FlagProbs, ServiceSpec, SizeDist, StageSpec};
use accelflow_trace::templates::TemplateId;

fn app(median_cycles: f64) -> StageSpec {
    StageSpec::Cpu(CyclesDist::new(median_cycles, 0.5))
}

fn media_flags() -> FlagProbs {
    FlagProbs {
        compressed: 0.8,
        hit: 0.7,
        found: 0.98,
        exception: 0.01,
        cache_compressed: 0.3,
    }
}

/// Image rotation: the short function the paper calls out ("AccelFlow
/// substantially reduces the tail latency ... particularly for
/// short-running functions such as ImgRot").
pub fn img_rot() -> ServiceSpec {
    ServiceSpec::new(
        "ImgRot",
        vec![
            StageSpec::Call(
                CallSpec::new(TemplateId::T1)
                    .with_flags(media_flags())
                    .with_payload(SizeDist::new(8_000.0, 0.8, 256 * 1024)),
            ),
            app(60_000.0), // the rotate kernel itself is tiny
            StageSpec::Call(CallSpec::new(TemplateId::T3).with_payload(SizeDist::new(
                8_000.0,
                0.8,
                256 * 1024,
            ))),
        ],
    )
}

/// ML model serving: fetch features, run inference, respond.
pub fn ml_serve() -> ServiceSpec {
    ServiceSpec::new(
        "MLServe",
        vec![
            StageSpec::Call(CallSpec::new(TemplateId::T1)),
            app(120_000.0),
            StageSpec::Call(CallSpec::new(TemplateId::T4)),
            app(700_000.0), // inference
            StageSpec::Call(CallSpec::new(TemplateId::T2)),
        ],
    )
}

/// Video processing: fetch a chunk over HTTP, transcode, store.
pub fn vid_proc() -> ServiceSpec {
    ServiceSpec::new(
        "VidProc",
        vec![
            StageSpec::Call(CallSpec::new(TemplateId::T1).with_flags(media_flags())),
            app(150_000.0),
            StageSpec::Call(
                CallSpec::new(TemplateId::T11)
                    .with_cmp_prob(0.5)
                    .with_payload(SizeDist::new(24_000.0, 0.9, 512 * 1024)),
            ),
            app(1_500_000.0), // transcode
            StageSpec::Call(CallSpec::new(TemplateId::T8).with_cmp_prob(0.8)),
            app(80_000.0),
            StageSpec::Call(CallSpec::new(TemplateId::T2)),
        ],
    )
}

/// Document conversion (e.g. markdown→PDF): fetch, convert, compress,
/// respond.
pub fn doc_conv() -> ServiceSpec {
    ServiceSpec::new(
        "DocConv",
        vec![
            StageSpec::Call(CallSpec::new(TemplateId::T1)),
            app(90_000.0),
            StageSpec::Call(CallSpec::new(TemplateId::T11).with_payload(SizeDist::new(
                12_000.0,
                0.8,
                256 * 1024,
            ))),
            app(500_000.0),
            StageSpec::Call(CallSpec::new(TemplateId::T3).with_payload(SizeDist::new(
                16_000.0,
                0.8,
                256 * 1024,
            ))),
        ],
    )
}

/// A JSON-heavy API aggregator (fan-out to two backends).
pub fn api_agg() -> ServiceSpec {
    ServiceSpec::new(
        "ApiAgg",
        vec![
            StageSpec::Call(CallSpec::new(TemplateId::T1)),
            app(50_000.0),
            StageSpec::Parallel(vec![CallSpec::new(TemplateId::T9); 2]),
            app(40_000.0),
            StageSpec::Call(CallSpec::new(TemplateId::T2)),
        ],
    )
}

/// The Fig 16 function set.
pub fn all() -> Vec<ServiceSpec> {
    vec![img_rot(), ml_serve(), vid_proc(), doc_conv(), api_agg()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelflow_accel::timing::ServiceTimeModel;
    use accelflow_sim::rng::SimRng;
    use accelflow_sim::time::Frequency;
    use accelflow_trace::templates::TraceLibrary;

    #[test]
    fn five_functions() {
        let fns = all();
        assert_eq!(fns.len(), 5);
        let mut names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn img_rot_is_the_shortest_function() {
        let lib = TraceLibrary::standard();
        let timing = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
        let mut rng = SimRng::seed(2);
        let mut app_cycles = |svc: &ServiceSpec| {
            let mut total = 0.0;
            for i in 0..50u64 {
                total += svc.sample(&lib, &timing, &mut rng, i << 36).app_cycles();
            }
            total / 50.0
        };
        let rot = app_cycles(&img_rot());
        for f in [ml_serve(), vid_proc(), doc_conv()] {
            assert!(app_cycles(&f) > rot, "{} should outweigh ImgRot", f.name);
        }
    }

    #[test]
    fn functions_pay_substantial_tax() {
        // The premise of Fig 16: serverless functions carry heavy
        // datacenter tax. For ImgRot, tax must dominate app logic.
        let lib = TraceLibrary::standard();
        let timing = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
        let mut rng = SimRng::seed(4);
        let svc = img_rot();
        let mut tax = 0.0;
        let mut app = 0.0;
        for i in 0..100u64 {
            let p = svc.sample(&lib, &timing, &mut rng, i << 36);
            app += p.app_cycles();
            for call in p.calls() {
                for seg in &call.segments {
                    for hop in &seg.hops {
                        tax += timing.cpu_cycles(hop.kind, hop.in_bytes);
                    }
                }
            }
        }
        assert!(tax > app, "tax {tax} must exceed app {app} for ImgRot");
    }
}
