//! A minimal JSON reader/writer for workload configuration files.
//!
//! The workspace deliberately keeps its dependency set tiny, so this
//! module implements the small JSON subset the configs need: objects,
//! arrays, strings (with `\uXXXX` escapes), numbers, booleans, null.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (order-normalized).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| out.push_str(&"  ".repeat(d));
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    item.write(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push(']');
            }
            Value::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    pad(out, depth + 1);
                    Value::Str(k.clone()).write(out, depth + 1);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push('}');
            }
        }
    }
}

/// A JSON parse error with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => self.err(format!("unexpected byte '{}'", b as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected '{word}'"))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Num(n)),
            _ => self.err(format!("bad number '{text}'")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    s.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| ParseError {
                            at: self.pos,
                            message: "invalid utf-8".into(),
                        })?;
                    let c = rest.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a [`ParseError`] with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing content");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": "c"}], "d": null}"#).unwrap();
        assert_eq!(v.get("d"), Some(&Value::Null));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
    }

    #[test]
    fn escapes_roundtrip() {
        let original = Value::Str("line\n\"quote\"\tπ".into());
        let text = original.pretty();
        assert_eq!(parse(&text).unwrap(), original);
    }

    #[test]
    fn pretty_roundtrips_nested() {
        let v = Value::obj([
            ("name", Value::Str("svc".into())),
            ("rate", Value::Num(13400.0)),
            (
                "stages",
                Value::Arr(vec![Value::obj([("cpu", Value::Num(5.5))]), Value::Null]),
            ),
            ("empty_arr", Value::Arr(vec![])),
            ("empty_obj", Value::Obj(Default::default())),
        ]);
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn errors_carry_position() {
        let err = parse("{\"a\": }").unwrap_err();
        assert_eq!(err.at, 6);
        assert!(parse("[1, 2").is_err());
        assert!(parse("12 34").unwrap_err().message.contains("trailing"));
        assert!(parse("\"\\u12G4\"").is_err());
        assert!(parse("1e999").is_err(), "non-finite rejected");
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("\"héllo ✓\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo ✓"));
    }
}
