//! Open-loop, trace-shaped arrival processes (ROADMAP "production
//! traffic scenarios").
//!
//! The paper grounds AccelFlow in production microservice traffic:
//! Alibaba invocation traces with diurnal cycles and correlated
//! sub-second bursts, and Azure serverless traces with cold-start
//! storms. Everything this module generates is **open loop** — offered
//! load is a function of time only, never of completion rate — which
//! is the regime where tail-latency SLO claims mean something (a
//! closed loop self-throttles exactly when the system congests).
//!
//! An [`ArrivalProcess`] is a deterministic intensity function `λ(t)`
//! expressed as a multiplier over a mean rate. Arrivals are drawn from
//! the non-homogeneous Poisson process with that intensity by
//! Lewis–Shedler thinning: candidates at the constant envelope rate
//! `mean_rps × peak()` are kept with probability `intensity(t)/peak()`.
//! Stochastic processes (burst timelines, storm schedules) pre-draw
//! their timeline at construction from an isolated [`SimRng`] stream
//! (the PR 5 fault-stream pattern), so `intensity` itself is a pure
//! function and two calls with the same seed are byte-identical.
//!
//! See `docs/WORKLOADS.md` for the scenario gallery: each generator's
//! math, its knobs, the determinism argument, and worked
//! `stats_openloop` runs.

use accelflow_accel::timing::ServiceTimeModel;
use accelflow_core::arrivals::{Arrival, BUFFER_POOL};
use accelflow_core::request::{ServiceId, ServiceSpec};
use accelflow_sim::rng::SimRng;
use accelflow_sim::time::{SimDuration, SimTime};
use accelflow_trace::templates::TraceLibrary;

use crate::arrivals::BurstyProfile;

/// Salt isolating the open-loop RNG stream from every other consumer
/// of the run seed (faults use their own salt, dispatch its own): the
/// same seed drives arrivals, faults, and dispatch without any stream
/// observing another's draws.
pub const OPENLOOP_STREAM_SALT: u64 = 0x00A5_F10E_D00D_CAFE;

/// A time-varying arrival intensity, as a multiplier over a mean rate.
///
/// Implementations must be **pure**: `intensity(at)` depends only on
/// `self` and `at`. Stochastic shapes (e.g. [`CorrelatedBursts`])
/// pre-draw their whole timeline at construction from a seed, so the
/// trait itself stays deterministic and arrival generation is
/// byte-identical per seed.
///
/// `peak()` must bound `intensity` from above (the thinning envelope);
/// a loose bound only costs rejected candidates, never correctness —
/// intensities above the envelope are clamped to it.
///
/// # Implementing a custom generator
///
/// A square wave that alternates between off and double rate every
/// millisecond:
///
/// ```
/// use accelflow_sim::time::{SimDuration, SimTime};
/// use accelflow_workloads::openloop::{openloop_arrivals, ArrivalProcess};
/// use accelflow_workloads::socialnetwork;
/// use accelflow_accel::timing::ServiceTimeModel;
/// use accelflow_sim::time::Frequency;
/// use accelflow_trace::templates::TraceLibrary;
///
/// struct SquareWave {
///     half_period: SimDuration,
/// }
///
/// impl ArrivalProcess for SquareWave {
///     fn name(&self) -> &str {
///         "square"
///     }
///     fn peak(&self) -> f64 {
///         2.0
///     }
///     fn intensity(&self, at: SimTime) -> f64 {
///         let phase = (at.as_picos() / self.half_period.as_picos()) % 2;
///         if phase == 0 { 2.0 } else { 0.0 }
///     }
/// }
///
/// let process = SquareWave { half_period: SimDuration::from_millis(1) };
/// let lib = TraceLibrary::standard();
/// let timing = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
/// let services = vec![socialnetwork::uniq_id()];
/// let arrivals = openloop_arrivals(
///     &process, &services, &lib, &timing,
///     2_000.0, SimDuration::from_millis(20), 7,
/// );
/// // All arrivals land in "on" half-periods, none in "off" ones.
/// assert!(!arrivals.is_empty());
/// assert!(arrivals
///     .iter()
///     .all(|a| (a.at.as_picos() / SimDuration::from_millis(1).as_picos()) % 2 == 0));
/// ```
pub trait ArrivalProcess {
    /// Short scenario name for tables and logs.
    fn name(&self) -> &str;

    /// Upper bound on [`intensity`](Self::intensity) over the run —
    /// the constant thinning envelope. Must be `> 0`.
    fn peak(&self) -> f64;

    /// Rate multiplier at instant `at` (relative to the mean rate
    /// handed to [`openloop_arrivals`]). Must be `>= 0` and should
    /// stay `<= peak()`; excursions above the envelope are clamped.
    fn intensity(&self, at: SimTime) -> f64;
}

/// Steady unit-rate process: `λ(t) = 1`. Thinning accepts every
/// candidate, so this is an ordinary Poisson stream — the control
/// scenario every shaped generator is compared against.
#[derive(Clone, Debug)]
pub struct Steady;

impl ArrivalProcess for Steady {
    fn name(&self) -> &str {
        "steady"
    }
    fn peak(&self) -> f64 {
        1.0
    }
    fn intensity(&self, _at: SimTime) -> f64 {
        1.0
    }
}

/// Diurnal cycle: a raised sinusoid with unit mean,
/// `λ(t) = 1 − a·cos(2π·t/period)`. `t = 0` is the overnight trough
/// and `t = period/2` the midday peak, like the day-scale envelope of
/// the Alibaba invocation traces.
#[derive(Clone, Debug)]
pub struct Diurnal {
    /// One full day (trough → peak → trough).
    pub period: SimDuration,
    /// Swing amplitude in `[0, 1]`: peak is `1 + a`, trough `1 − a`.
    pub amplitude: f64,
}

impl Diurnal {
    /// A "day" spanning exactly one run of `duration`, so a single run
    /// sees trough, peak, and trough.
    pub fn day(duration: SimDuration, amplitude: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&amplitude),
            "amplitude must be in [0,1]"
        );
        Diurnal {
            period: duration,
            amplitude,
        }
    }
}

impl ArrivalProcess for Diurnal {
    fn name(&self) -> &str {
        "diurnal"
    }
    fn peak(&self) -> f64 {
        1.0 + self.amplitude
    }
    fn intensity(&self, at: SimTime) -> f64 {
        let frac = at.as_secs_f64() / self.period.as_secs_f64();
        1.0 - self.amplitude * (std::f64::consts::TAU * frac).cos()
    }
}

/// Flash crowd: baseline rate 1, then a linear ramp to `peak_mult`
/// starting at `start`, followed by an exponential decay back toward
/// baseline with time constant `decay` (the classic breaking-news /
/// sale-event shape).
#[derive(Clone, Debug)]
pub struct FlashCrowd {
    /// When the crowd starts arriving (offset from run start).
    pub start: SimDuration,
    /// Ramp-up time from baseline to the full crowd.
    pub ramp: SimDuration,
    /// Rate multiplier at the crowd's height.
    pub peak_mult: f64,
    /// Exponential decay constant of the crowd's interest.
    pub decay: SimDuration,
}

impl FlashCrowd {
    /// A crowd sized for one run: starts 1/4 in, ramps over 1/16 of
    /// the run, decays with an 1/8-run time constant.
    pub fn for_run(duration: SimDuration, peak_mult: f64) -> Self {
        let ps = duration.as_picos();
        FlashCrowd {
            start: SimDuration::from_picos(ps / 4),
            ramp: SimDuration::from_picos(ps / 16),
            peak_mult,
            decay: SimDuration::from_picos(ps / 8),
        }
    }
}

impl ArrivalProcess for FlashCrowd {
    fn name(&self) -> &str {
        "flash"
    }
    fn peak(&self) -> f64 {
        self.peak_mult
    }
    fn intensity(&self, at: SimTime) -> f64 {
        let t = at.saturating_since(SimTime::ZERO);
        if t < self.start {
            return 1.0;
        }
        let since = t.saturating_sub(self.start);
        if since < self.ramp {
            let frac = since.as_secs_f64() / self.ramp.as_secs_f64();
            return 1.0 + (self.peak_mult - 1.0) * frac;
        }
        let tail = since.saturating_sub(self.ramp);
        1.0 + (self.peak_mult - 1.0) * (-tail.as_secs_f64() / self.decay.as_secs_f64()).exp()
    }
}

/// Correlated multi-service bursts: one piecewise-constant
/// Markov-modulated timeline (a [`BurstyProfile`], normalized to unit
/// mean) drives **every** service, reproducing the Alibaba-trace
/// property that surges hit colocated services together. The timeline
/// is pre-drawn at construction from `seed`, so `intensity` is pure.
#[derive(Clone, Debug)]
pub struct CorrelatedBursts {
    label: &'static str,
    /// Segment end times, ascending; the last equals the horizon.
    ends: Vec<SimTime>,
    /// Rate multiplier of each segment (normalized to unit mean).
    mults: Vec<f64>,
    peak: f64,
}

impl CorrelatedBursts {
    /// Draws a timeline from `profile` covering `duration`.
    pub fn new(
        label: &'static str,
        profile: &BurstyProfile,
        duration: SimDuration,
        seed: u64,
    ) -> Self {
        let norm = profile.mean_multiplier();
        let mut rng = SimRng::seed(seed ^ OPENLOOP_STREAM_SALT).fork(0xB00);
        let end = SimTime::ZERO + duration;
        let (mut ends, mut mults) = (Vec::new(), Vec::new());
        let mut t = SimTime::ZERO;
        let mut peak = 0.0f64;
        while t < end {
            let mult = profile.states[rng.weighted_index(&profile.weights)] / norm;
            let dwell =
                SimDuration::from_micros_f64(rng.exponential(profile.dwell.as_micros_f64()));
            t = (t + dwell).min(end);
            ends.push(t);
            mults.push(mult);
            peak = peak.max(mult);
        }
        CorrelatedBursts {
            label,
            ends,
            mults,
            peak: peak.max(1e-9),
        }
    }

    /// Alibaba-like sub-second burst correlation.
    pub fn alibaba(duration: SimDuration, seed: u64) -> Self {
        Self::new("bursts", &BurstyProfile::alibaba_like(), duration, seed)
    }
}

impl ArrivalProcess for CorrelatedBursts {
    fn name(&self) -> &str {
        self.label
    }
    fn peak(&self) -> f64 {
        self.peak
    }
    fn intensity(&self, at: SimTime) -> f64 {
        // First segment whose end lies strictly after `at` holds it.
        let i = self.ends.partition_point(|&e| e <= at);
        self.mults.get(i).copied().unwrap_or(0.0)
    }
}

/// Serverless cold-start storm (Azure-like): a low idle baseline
/// punctuated by short, violent invocation storms. Storm starts form a
/// Poisson chain, widths are exponential, and each storm's height is
/// drawn in `[0.5, 1.5] × storm_mult`; storms never overlap (the next
/// gap starts where the previous storm ended). The schedule is
/// pre-drawn at construction from `seed`.
#[derive(Clone, Debug)]
pub struct ColdStartStorm {
    /// Baseline multiplier between storms (keep-warm trickle).
    pub idle: f64,
    /// `(start, end, added multiplier)` per storm, ascending, disjoint.
    storms: Vec<(SimTime, SimTime, f64)>,
    peak: f64,
}

impl ColdStartStorm {
    /// Draws a storm schedule over `duration`: mean `gap` between
    /// storms, mean `width` per storm, height around `storm_mult`.
    pub fn new(
        duration: SimDuration,
        seed: u64,
        idle: f64,
        gap: SimDuration,
        width: SimDuration,
        storm_mult: f64,
    ) -> Self {
        let mut rng = SimRng::seed(seed ^ OPENLOOP_STREAM_SALT).fork(0xC01D);
        let end = SimTime::ZERO + duration;
        let mut storms = Vec::new();
        let mut t = SimTime::ZERO;
        let mut peak = idle;
        loop {
            t += SimDuration::from_micros_f64(rng.exponential(gap.as_micros_f64()));
            if t >= end {
                break;
            }
            let w = SimDuration::from_micros_f64(rng.exponential(width.as_micros_f64()));
            let stop = (t + w).min(end);
            let mult = storm_mult * rng.uniform_range(0.5, 1.5);
            peak = peak.max(idle + mult);
            storms.push((t, stop, mult));
            t = stop;
        }
        ColdStartStorm { idle, storms, peak }
    }

    /// Azure-like defaults for one run: 10% idle trickle, storms
    /// covering ~1/4 of the run at ~8× the mean rate.
    pub fn azure(duration: SimDuration, seed: u64) -> Self {
        let gap = SimDuration::from_picos(duration.as_picos() / 12);
        let width = SimDuration::from_picos(duration.as_picos() / 36);
        Self::new(duration, seed, 0.1, gap, width, 8.0)
    }
}

impl ArrivalProcess for ColdStartStorm {
    fn name(&self) -> &str {
        "coldstart"
    }
    fn peak(&self) -> f64 {
        self.peak
    }
    fn intensity(&self, at: SimTime) -> f64 {
        // Storms are few (dozens); a scan is cheaper than it looks and
        // partition_point over starts needs the same memory touch.
        let i = self.storms.partition_point(|&(start, _, _)| start <= at);
        if i > 0 {
            let (_, stop, mult) = self.storms[i - 1];
            if at < stop {
                return self.idle + mult;
            }
        }
        self.idle
    }
}

/// Product of two processes: `λ(t) = a(t) × b(t)` — e.g. a diurnal
/// envelope modulating sub-second correlated bursts, the full
/// Alibaba-trace shape.
#[derive(Clone, Debug)]
pub struct Modulated<A, B> {
    label: String,
    /// Outer (slow) envelope.
    pub a: A,
    /// Inner (fast) modulation.
    pub b: B,
}

impl<A: ArrivalProcess, B: ArrivalProcess> Modulated<A, B> {
    /// Composes two processes by pointwise product.
    pub fn new(a: A, b: B) -> Self {
        let label = format!("{}*{}", a.name(), b.name());
        Modulated { label, a, b }
    }
}

impl<A: ArrivalProcess, B: ArrivalProcess> ArrivalProcess for Modulated<A, B> {
    fn name(&self) -> &str {
        &self.label
    }
    fn peak(&self) -> f64 {
        self.a.peak() * self.b.peak()
    }
    fn intensity(&self, at: SimTime) -> f64 {
        self.a.intensity(at) * self.b.intensity(at)
    }
}

/// Streams arrivals for one service mix under `process` without
/// materializing them: calls `sink` once per arrival, **grouped by
/// service** and time-ordered within each service (not globally).
///
/// This is the allocation-free core of [`openloop_arrivals`]; benches
/// use it to measure generator throughput on millions of arrivals
/// without holding them all.
#[allow(clippy::too_many_arguments)]
pub fn openloop_each(
    process: &dyn ArrivalProcess,
    services: &[ServiceSpec],
    lib: &TraceLibrary,
    timing: &ServiceTimeModel,
    mean_rps: f64,
    duration: SimDuration,
    seed: u64,
    mut sink: impl FnMut(Arrival),
) {
    let peak = process.peak();
    assert!(peak > 0.0, "ArrivalProcess::peak() must be positive");
    let envelope_rps = mean_rps * peak;
    if envelope_rps <= 0.0 {
        return;
    }
    let mean_gap_us = 1e6 / envelope_rps;
    let mut master = SimRng::seed(seed ^ OPENLOOP_STREAM_SALT);
    let mut counter = 0u64;
    for (idx, svc) in services.iter().enumerate() {
        let mut rng = master.fork(idx as u64);
        let mut t = SimTime::ZERO;
        loop {
            t += SimDuration::from_micros_f64(rng.exponential(mean_gap_us));
            if t.saturating_since(SimTime::ZERO) >= duration {
                break;
            }
            // Lewis–Shedler thinning: keep the candidate with
            // probability λ(t)/peak. The accept draw is consumed for
            // every candidate, so the stream of kept instants is
            // independent of how loose the envelope is.
            let keep = rng.uniform() < (process.intensity(t) / peak).min(1.0);
            if !keep {
                continue;
            }
            counter += 1;
            let buffer = (counter % BUFFER_POOL) << 24;
            sink(Arrival {
                at: t,
                service: ServiceId(idx),
                tenant: svc.tenant,
                program: svc.sample(lib, timing, &mut rng, buffer),
            });
        }
    }
}

/// Generates the time-sorted open-loop arrival list for a service mix:
/// a non-homogeneous Poisson stream per service with intensity
/// `mean_rps × process.intensity(t)`, drawn by thinning on forked
/// per-service streams off `seed ^ OPENLOOP_STREAM_SALT`.
///
/// Byte-identical per `(process, services, mean_rps, duration, seed)`.
pub fn openloop_arrivals(
    process: &dyn ArrivalProcess,
    services: &[ServiceSpec],
    lib: &TraceLibrary,
    timing: &ServiceTimeModel,
    mean_rps: f64,
    duration: SimDuration,
    seed: u64,
) -> Vec<Arrival> {
    let mut arrivals = Vec::new();
    openloop_each(
        process,
        services,
        lib,
        timing,
        mean_rps,
        duration,
        seed,
        |a| arrivals.push(a),
    );
    arrivals.sort_by_key(|a| a.at);
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::socialnetwork;
    use accelflow_sim::time::Frequency;

    fn fixtures() -> (TraceLibrary, ServiceTimeModel) {
        (
            TraceLibrary::standard(),
            ServiceTimeModel::calibrated(Frequency::from_ghz(2.4)),
        )
    }

    fn gen(process: &dyn ArrivalProcess, rps: f64, ms: u64, seed: u64) -> Vec<Arrival> {
        let (lib, timing) = fixtures();
        let services = vec![socialnetwork::uniq_id(), socialnetwork::login()];
        openloop_arrivals(
            process,
            &services,
            &lib,
            &timing,
            rps,
            SimDuration::from_millis(ms),
            seed,
        )
    }

    #[test]
    fn steady_matches_requested_mean() {
        let arr = gen(&Steady, 1_000.0, 2_000, 11);
        // 2 services × 1000 rps × 2 s = 4000 expected.
        let rate = arr.len() as f64 / 2.0 / 2.0;
        assert!((rate - 1_000.0).abs() / 1_000.0 < 0.1, "rate {rate}");
    }

    #[test]
    fn diurnal_keeps_unit_mean_and_shapes_the_day() {
        let dur = SimDuration::from_millis(2_000);
        let process = Diurnal::day(dur, 0.8);
        let arr = gen(&process, 1_000.0, 2_000, 3);
        let rate = arr.len() as f64 / 2.0 / 2.0;
        assert!((rate - 1_000.0).abs() / 1_000.0 < 0.1, "rate {rate}");
        // Midday half must carry clearly more than the overnight half.
        let mid = SimTime::ZERO + SimDuration::from_millis(500);
        let late = SimTime::ZERO + SimDuration::from_millis(1_500);
        let peak_half = arr.iter().filter(|a| a.at >= mid && a.at < late).count();
        let trough_half = arr.len() - peak_half;
        assert!(
            peak_half as f64 > 1.5 * trough_half as f64,
            "peak {peak_half} vs trough {trough_half}"
        );
    }

    #[test]
    fn flash_crowd_concentrates_after_start() {
        let dur = SimDuration::from_millis(800);
        let process = FlashCrowd::for_run(dur, 6.0);
        let arr = gen(&process, 500.0, 800, 17);
        let start = SimTime::ZERO + process.start;
        let crowd_end = start + process.ramp + process.decay;
        let before_rate =
            arr.iter().filter(|a| a.at < start).count() as f64 / process.start.as_secs_f64();
        let crowd_rate = arr
            .iter()
            .filter(|a| a.at >= start && a.at < crowd_end)
            .count() as f64
            / (process.ramp + process.decay).as_secs_f64();
        assert!(
            crowd_rate > 2.0 * before_rate,
            "crowd {crowd_rate}/s vs before {before_rate}/s"
        );
    }

    #[test]
    fn correlated_bursts_are_overdispersed_and_correlated() {
        let dur = SimDuration::from_millis(500);
        let process = CorrelatedBursts::alibaba(dur, 23);
        let arr = gen(&process, 2_000.0, 500, 23);
        let bucket = SimDuration::from_millis(10);
        let buckets = (dur.as_picos() / bucket.as_picos()) as usize;
        // Dispersion per service, and cross-service correlation of
        // bucket counts (both services ride one timeline).
        let mut counts = vec![[0f64; 2]; buckets];
        for a in &arr {
            let b = ((a.at.as_picos()) / bucket.as_picos()) as usize;
            counts[b.min(buckets - 1)][a.service.0.min(1)] += 1.0;
        }
        for svc in 0..2 {
            let col: Vec<f64> = counts.iter().map(|c| c[svc]).collect();
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            let var = col.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / col.len() as f64;
            assert!(var / mean > 2.0, "dispersion {} for svc {svc}", var / mean);
        }
        let (mx, my) = (
            counts.iter().map(|c| c[0]).sum::<f64>() / buckets as f64,
            counts.iter().map(|c| c[1]).sum::<f64>() / buckets as f64,
        );
        let cov = counts
            .iter()
            .map(|c| (c[0] - mx) * (c[1] - my))
            .sum::<f64>();
        let (vx, vy) = (
            counts.iter().map(|c| (c[0] - mx).powi(2)).sum::<f64>(),
            counts.iter().map(|c| (c[1] - my).powi(2)).sum::<f64>(),
        );
        let corr = cov / (vx * vy).sqrt();
        assert!(corr > 0.5, "cross-service burst correlation {corr}");
    }

    #[test]
    fn cold_start_storms_leave_idle_valleys() {
        let dur = SimDuration::from_millis(1_000);
        let process = ColdStartStorm::azure(dur, 31);
        let arr = gen(&process, 2_000.0, 1_000, 31);
        assert!(!arr.is_empty());
        // At a 0.1× idle baseline most 5ms buckets should be
        // near-empty while storm buckets overflow.
        let bucket = SimDuration::from_millis(5);
        let buckets = (dur.as_picos() / bucket.as_picos()) as usize;
        let mut counts = vec![0u64; buckets];
        for a in &arr {
            counts[((a.at.as_picos() / bucket.as_picos()) as usize).min(buckets - 1)] += 1;
        }
        let idle_per_bucket = 2.0 * 2_000.0 * 0.1 * bucket.as_secs_f64();
        let quiet = counts
            .iter()
            .filter(|&&c| (c as f64) < 4.0 * idle_per_bucket)
            .count();
        let max = *counts.iter().max().unwrap() as f64;
        assert!(
            quiet * 2 > buckets,
            "expected mostly-idle valleys, quiet {quiet}/{buckets}"
        );
        assert!(
            max > 10.0 * idle_per_bucket.max(1.0),
            "expected violent storms, max bucket {max}"
        );
    }

    #[test]
    fn modulated_composes_envelopes() {
        let dur = SimDuration::from_millis(400);
        let process = Modulated::new(Diurnal::day(dur, 0.5), CorrelatedBursts::alibaba(dur, 5));
        assert_eq!(process.name(), "diurnal*bursts");
        let mid = SimTime::ZERO + SimDuration::from_picos(dur.as_picos() / 2);
        assert!(process.peak() >= process.intensity(mid));
        let arr = gen(&process, 1_000.0, 400, 5);
        assert!(!arr.is_empty());
    }

    #[test]
    fn every_generator_is_seed_deterministic() {
        let dur = SimDuration::from_millis(300);
        let procs: Vec<Box<dyn ArrivalProcess>> = vec![
            Box::new(Steady),
            Box::new(Diurnal::day(dur, 0.7)),
            Box::new(FlashCrowd::for_run(dur, 5.0)),
            Box::new(CorrelatedBursts::alibaba(dur, 77)),
            Box::new(ColdStartStorm::azure(dur, 77)),
        ];
        for p in &procs {
            let a = gen(p.as_ref(), 800.0, 300, 77);
            let b = gen(p.as_ref(), 800.0, 300, 77);
            assert_eq!(a.len(), b.len(), "{}", p.name());
            assert!(
                a.iter()
                    .zip(&b)
                    .all(|(x, y)| x.at == y.at && x.service == y.service),
                "{} not deterministic",
                p.name()
            );
            let c = gen(p.as_ref(), 800.0, 300, 78);
            assert!(
                a.len() != c.len() || a.iter().zip(&c).any(|(x, y)| x.at != y.at),
                "{} ignores its seed",
                p.name()
            );
        }
    }

    #[test]
    fn streaming_and_collected_forms_agree() {
        let (lib, timing) = fixtures();
        let services = vec![socialnetwork::uniq_id()];
        let dur = SimDuration::from_millis(200);
        let process = Diurnal::day(dur, 0.6);
        let collected = openloop_arrivals(&process, &services, &lib, &timing, 1_000.0, dur, 9);
        let mut streamed = Vec::new();
        openloop_each(&process, &services, &lib, &timing, 1_000.0, dur, 9, |a| {
            streamed.push(a)
        });
        streamed.sort_by_key(|a| a.at);
        assert_eq!(collected.len(), streamed.len());
        assert!(collected
            .iter()
            .zip(&streamed)
            .all(|(x, y)| x.at == y.at && x.service == y.service));
    }
}
