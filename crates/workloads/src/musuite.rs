//! µSuite-like services (Sriraman & Wenisch, IISWC'18) — the third
//! suite the paper characterizes (§III).
//!
//! µSuite's benchmarks are mid-tier/leaf pairs with tiny leaf
//! operations: HDSearch (high-dimensional similarity search), Router
//! (replicated key-value routing), Set Algebra (set intersections over
//! posting lists), and Recommend (collaborative filtering). The killer
//! property is *extreme* fine-granularity: leaf work is tens of µs, so
//! datacenter tax dominates even more than in DeathStarBench, and the
//! mid-tier fans out to several leaves per query.

use accelflow_core::request::{CallSpec, CyclesDist, FlagProbs, ServiceSpec, SizeDist, StageSpec};
use accelflow_trace::templates::TemplateId;

fn app(median_cycles: f64) -> StageSpec {
    StageSpec::Cpu(CyclesDist::new(median_cycles, 0.3))
}

fn leaf_flags() -> FlagProbs {
    FlagProbs {
        compressed: 0.2,
        hit: 0.85,
        found: 0.99,
        exception: 0.005,
        cache_compressed: 0.15,
    }
}

fn rpc() -> CallSpec {
    CallSpec::new(TemplateId::T9)
        .with_flags(leaf_flags())
        .with_payload(SizeDist::new(900.0, 0.6, 12 * 1024))
}

/// HDSearch mid-tier: fan out a feature vector to leaves, merge.
pub fn hdsearch() -> ServiceSpec {
    ServiceSpec::new(
        "HDSearch",
        vec![
            StageSpec::Call(CallSpec::new(TemplateId::T1).with_flags(leaf_flags())),
            app(30_000.0),
            StageSpec::Parallel(vec![rpc(); 4]),
            app(25_000.0),
            StageSpec::Call(CallSpec::new(TemplateId::T2).with_flags(leaf_flags())),
        ],
    )
}

/// Router: route a get/set to replicas.
pub fn router() -> ServiceSpec {
    ServiceSpec::new(
        "Router",
        vec![
            StageSpec::Call(
                CallSpec::new(TemplateId::T1)
                    .with_flags(leaf_flags())
                    .with_payload(SizeDist::new(400.0, 0.5, 4 * 1024)),
            ),
            app(12_000.0),
            StageSpec::Parallel(vec![rpc(); 2]),
            app(8_000.0),
            StageSpec::Call(CallSpec::new(TemplateId::T2).with_flags(leaf_flags())),
        ],
    )
}

/// Set Algebra: intersect posting lists across shards.
pub fn set_algebra() -> ServiceSpec {
    ServiceSpec::new(
        "SetAlgebra",
        vec![
            StageSpec::Call(CallSpec::new(TemplateId::T1).with_flags(leaf_flags())),
            app(18_000.0),
            StageSpec::Parallel(vec![rpc(); 3]),
            app(22_000.0),
            StageSpec::Call(CallSpec::new(TemplateId::T2).with_flags(leaf_flags())),
        ],
    )
}

/// Recommend: user/item lookup plus a scoring pass.
pub fn recommend() -> ServiceSpec {
    ServiceSpec::new(
        "Recommend",
        vec![
            StageSpec::Call(CallSpec::new(TemplateId::T1).with_flags(leaf_flags())),
            app(20_000.0),
            StageSpec::Call(CallSpec::new(TemplateId::T4).with_flags(leaf_flags())),
            app(35_000.0),
            StageSpec::Call(CallSpec::new(TemplateId::T2).with_flags(leaf_flags())),
        ],
    )
}

/// The µSuite-like mix.
pub fn all() -> Vec<ServiceSpec> {
    vec![hdsearch(), router(), set_algebra(), recommend()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelflow_accel::timing::ServiceTimeModel;
    use accelflow_sim::rng::SimRng;
    use accelflow_sim::time::Frequency;
    use accelflow_trace::templates::TraceLibrary;

    #[test]
    fn four_services_with_fanout() {
        let services = all();
        assert_eq!(services.len(), 4);
        let fanouts = services
            .iter()
            .filter(|s| {
                s.stages
                    .iter()
                    .any(|st| matches!(st, StageSpec::Parallel(_)))
            })
            .count();
        assert!(fanouts >= 3, "µSuite is fan-out heavy");
    }

    #[test]
    fn tax_dominates_even_more_than_socialnetwork() {
        let lib = TraceLibrary::standard();
        let timing = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
        let tax_share = |services: &[ServiceSpec]| {
            let mut rng = SimRng::seed(31);
            let (mut tax, mut app) = (0.0, 0.0);
            for svc in services {
                for i in 0..80u64 {
                    let p = svc.sample(&lib, &timing, &mut rng, i << 36);
                    app += p.app_cycles();
                    for c in p.calls() {
                        for seg in &c.segments {
                            for hop in &seg.hops {
                                tax += timing.cpu_cycles(hop.kind, hop.in_bytes);
                            }
                        }
                    }
                }
            }
            tax / (tax + app)
        };
        let mu = tax_share(&all());
        let social = tax_share(&crate::socialnetwork::all());
        assert!(mu > social, "µSuite tax {mu:.3} vs SocialNet {social:.3}");
        assert!(mu > 0.8, "leaf services are almost all tax: {mu:.3}");
    }

    #[test]
    fn router_is_the_smallest_service() {
        let lib = TraceLibrary::standard();
        let timing = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
        let mut rng = SimRng::seed(2);
        let mut mean_hops = |svc: &ServiceSpec| {
            (0..50u64)
                .map(|i| {
                    svc.sample(&lib, &timing, &mut rng, i << 36)
                        .accelerator_invocations()
                })
                .sum::<usize>() as f64
                / 50.0
        };
        let router = mean_hops(&router());
        let hd = mean_hops(&hdsearch());
        assert!(router < hd, "router {router} vs hdsearch {hd}");
    }
}
