//! # AccelFlow
//!
//! A production-quality Rust reproduction of **"AccelFlow: Orchestrating
//! an On-Package Ensemble of Fine-Grained Accelerators for
//! Microservices"** (HPCA 2026).
//!
//! Microservices spend most of their cycles on *datacenter tax* — TCP,
//! (de)encryption, RPC framing, (de)serialization, (de)compression, and
//! load balancing. The paper proposes integrating nine tax accelerators
//! on-package and orchestrating them with **traces**: core-built
//! sequences of accelerator IDs, with embedded branch conditions and
//! data-format transformations, that execute accelerator-to-accelerator
//! without CPU or centralized-manager involvement.
//!
//! This crate re-exports the whole reproduction:
//!
//! - [`sim`] — deterministic discrete-event simulation kernel.
//! - [`arch`] — hardware substrate: chiplet topology, interconnect,
//!   A-DMA engines, TLB/IOMMU, caches, memory bandwidth, energy.
//! - [`trace`] — the trace programming model (`seq`/`branch`/`trans`),
//!   packed 8-byte encodings, the ATM, and the paper's T1–T12 templates.
//! - [`accel`] — the nine accelerator models (queues, PEs, dispatchers).
//! - [`core`] — the machine model and the orchestration policies:
//!   Non-acc, CPU-Centric, RELIEF, Cohort, AccelFlow (+ablations), Ideal.
//! - [`workloads`] — DeathStarBench-like services, Alibaba-like arrival
//!   traces, serverless functions, and the RELIEF coarse-grain suite.
//!
//! # Quickstart
//!
//! ```
//! use accelflow::core::{Machine, MachineConfig, Policy};
//! use accelflow::workloads::socialnetwork;
//! use accelflow::sim::SimDuration;
//!
//! // Simulate the UniqId service under the AccelFlow orchestrator.
//! let services = vec![socialnetwork::uniq_id()];
//! let mut cfg = MachineConfig::new(Policy::AccelFlow);
//! cfg.warmup = SimDuration::from_millis(1);
//! let report = Machine::run_workload(&cfg, &services, 2_000.0, SimDuration::from_millis(40), 7);
//! let stats = &report.per_service[0];
//! assert!(stats.latency.count() > 0);
//! println!("UniqId p99 = {}", stats.latency.percentile_duration(99.0));
//! ```

pub use accelflow_accel as accel;
pub use accelflow_arch as arch;
pub use accelflow_core as core;
pub use accelflow_sim as sim;
pub use accelflow_trace as trace;
pub use accelflow_workloads as workloads;
